"""Vectorized substrate execution engine.

The three execution substrates (:mod:`repro.minitriton`,
:mod:`repro.minicuda`, :mod:`repro.mlir`) were built as tree-walk
interpreters: one Python pass per program / per block, which makes them
easy to audit but slow enough that ``repro.perf`` had to ration itself
to sampled launches.  This package compiles each launch into a
**whole-grid vectorized NumPy execution**: every program (mini-Triton)
or block (mini-CUDA, MLIR) runs simultaneously along a leading batch
axis, and the trace counters — DRAM sectors at the trace's recorded
granularity, shared-memory bank-conflict degrees, flops — are
synthesized from the batched access-offset arrays with
:mod:`repro.vm.batch` instead of per-access Python callbacks.

The engine is **bit-for-bit equivalent** to the interpreters: outputs
and every trace counter match exactly (all counters are sums of
integer-valued terms, so summation order cannot perturb them), which is
what lets ``repro.check`` differentially verify each vectorized
executor against its tree-walk twin.

Selection is controlled by :func:`engine_mode` / :func:`use_engine`
(or the ``REPRO_VM`` environment variable):

* ``"vectorized"`` (default) — batched execution, falling back to the
  tree-walk interpreter when a kernel does something the batched
  namespace cannot express;
* ``"vectorized-strict"`` — batched execution, re-raising instead of
  falling back (used by the equivalence tests);
* ``"treewalk"`` — the original interpreters, unconditionally.
"""

from .engine import engine_mode, set_engine_mode, use_engine
from .sampling import evenly_spaced

__all__ = ["engine_mode", "set_engine_mode", "use_engine", "evenly_spaced"]
