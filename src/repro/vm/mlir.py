"""Whole-grid batched interpretation of LEGO-emitted MLIR kernels.

Reuses the op dispatch of :class:`repro.mlir.interp._BlockExecutor` but
binds ``gpu.block_id`` to ``(B, 1)`` arrays so every launched block's SSA
values materialise at once: per-thread values broadcast to ``(B, T)`` rows,
block-uniform values stay rank <= 1 (recorded once and multiplied by ``B``).
Workgroup and private ``memref.alloc`` buffers get one row per block.

Anything outside the batchable subset (e.g. block-dependent ``scf.for``
bounds) raises, which the launcher turns into a tree-walk fallback.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..mlir.interp import _BlockExecutor
from ..mlir.ir import Operation, Value
from ..mlir.types import MemRefType
from .batch import chunk_keys, grouped_conflict_degrees, grouped_unique_count

__all__ = ["launch_batched"]


class _BatchedExecutor(_BlockExecutor):
    """One executor for a whole batch of thread blocks."""

    def __init__(
        self,
        block_ids: np.ndarray,
        block_dim: tuple[int, int, int],
        grid_dim: tuple[int, int, int],
        memrefs,
        result,
        warp_size: int,
        sector_bytes: int,
    ):
        batch = int(block_ids.size)
        bx = (block_ids % grid_dim[0]).reshape(batch, 1)
        by = ((block_ids // grid_dim[0]) % grid_dim[1]).reshape(batch, 1)
        bz = (block_ids // (grid_dim[0] * grid_dim[1])).reshape(batch, 1)
        super().__init__(
            (0, 0, 0), block_dim, grid_dim, memrefs, result,
            warp_size=warp_size, sector_bytes=sector_bytes,
        )
        self.block_idx = (bx, by, bz)
        self._batch = batch
        #: in-kernel allocations are per block -> one row each; kernel
        #: argument buffers stay flat and are shared across blocks
        self._batched_buffers: set[int] = set()

    # -- classification -----------------------------------------------------

    def _is_batched(self, array: np.ndarray) -> bool:
        if array.ndim == 2 and array.shape[0] == self._batch:
            return True
        if array.ndim <= 1:
            return False
        raise NotImplementedError(
            f"cannot classify a rank-{array.ndim} value under batching"
        )

    # -- accounting ---------------------------------------------------------

    def _count_flops(self, op: Operation) -> None:
        if op.name.endswith("f"):
            value = self.values.get(id(op.results[0])) if op.results else None
            raw = np.asarray(value) if value is not None else np.asarray(1)
            if self._is_batched(raw):
                self.result.flops += float(raw.size)
            else:
                self.result.flops += float(raw.size) * self._batch

    def _record_global(self, offsets: np.ndarray, element_bytes: int, is_store: bool) -> None:
        warp, sector = self.warp_size, self.sector_bytes
        if self._is_batched(offsets):
            lanes = offsets.shape[1]
            count = float(self._batch * lanes)
            keys = chunk_keys(self._batch, lanes, warp)
            transactions = float(grouped_unique_count(keys, offsets * element_bytes // sector))
        else:
            flat = offsets.reshape(-1)
            count = float(flat.size) * self._batch
            byte_addresses = flat * element_bytes
            per_block = 0
            for start in range(0, flat.size, warp):
                per_block += int(np.unique(byte_addresses[start:start + warp] // sector).size)
            transactions = float(per_block) * self._batch
        if is_store:
            self.result.store_elements += count
            self.result.store_bytes += count * element_bytes
            self.result.store_transactions += transactions
        else:
            self.result.load_elements += count
            self.result.load_bytes += count * element_bytes
            self.result.load_transactions += transactions

    def _record_shared(self, offsets: np.ndarray, element_bytes: int) -> None:
        warp = self.warp_size
        if self._is_batched(offsets):
            lanes = offsets.shape[1]
            self.result.smem_bytes += float(self._batch * lanes) * element_bytes
            keys = chunk_keys(self._batch, lanes, warp)
            degrees = grouped_conflict_degrees(keys, offsets, element_bytes)
        else:
            flat = offsets.reshape(-1)
            self.result.smem_bytes += float(self._batch * flat.size) * element_bytes
            keys = chunk_keys(1, flat.size, warp)
            degrees = np.tile(grouped_conflict_degrees(keys, flat, element_bytes), self._batch)
        self.result.smem_profile.record_many(degrees)

    # -- memory -------------------------------------------------------------

    def _alloc(self, op: Operation) -> None:
        memref_type = op.result.type
        if not isinstance(memref_type, MemRefType):
            raise TypeError("memref.alloc result must be a memref")
        buffer = np.zeros(
            (self._batch, memref_type.num_elements),
            dtype=memref_type.element_type.np_dtype,
        )
        self.memrefs[id(op.result)] = buffer
        self.memref_types[id(op.result)] = memref_type
        self._batched_buffers.add(id(op.result))
        if memref_type.memory_space == 3:
            # allocation accounting is per block, like the tree-walk
            self.shared_allocated += int(buffer.nbytes // self._batch)
        self.set(op.result, op.result)

    def _buffer_is_batched(self, source: Value) -> bool:
        if id(source) in self._batched_buffers:
            return True
        bound = self.values.get(id(source))
        return bound is not None and id(bound) in self._batched_buffers

    def _load(self, op: Operation) -> None:
        source = op.operands[0]
        memref_type = source.type
        assert isinstance(memref_type, MemRefType)
        buffer = self._buffer_of(source)
        offsets = self._flat_offsets(source, [self.get(v) for v in op.operands[1:]])
        element_bytes = buffer.dtype.itemsize
        if memref_type.memory_space == 3:
            self._record_shared(offsets, element_bytes)
        else:
            self._record_global(offsets, element_bytes, is_store=False)
        if self._buffer_is_batched(source):
            if self._is_batched(offsets):
                values = buffer[np.arange(self._batch)[:, None], offsets]
            else:
                flat = offsets.reshape(-1)
                values = buffer[:, flat].reshape((self._batch,) + offsets.shape)
        else:
            values = buffer[offsets]
        self.set(op.result, values)

    def _store(self, op: Operation) -> None:
        value = self.get(op.operands[0])
        dest = op.operands[1]
        memref_type = dest.type
        assert isinstance(memref_type, MemRefType)
        buffer = self._buffer_of(dest)
        offsets = self._flat_offsets(dest, [self.get(v) for v in op.operands[2:]])
        element_bytes = buffer.dtype.itemsize
        if memref_type.memory_space == 3:
            self._record_shared(offsets, element_bytes)
        else:
            self._record_global(offsets, element_bytes, is_store=True)
        raw = np.asarray(value, dtype=buffer.dtype)
        if self._buffer_is_batched(dest):
            if self._is_batched(offsets):
                buffer[np.arange(self._batch)[:, None], offsets] = np.broadcast_to(raw, offsets.shape)
            else:
                flat = offsets.reshape(-1)
                target = (self._batch,) + offsets.shape
                buffer[:, flat] = np.broadcast_to(raw, target).reshape(self._batch, -1)
        else:
            # flat argument buffer: C-order fancy assignment is block-major,
            # reproducing the tree-walk's sequential last-writer-wins
            buffer[offsets] = np.broadcast_to(raw, offsets.shape)

    # -- control flow -------------------------------------------------------

    def _for(self, op: Operation) -> None:
        for operand in op.operands[:3]:
            if np.asarray(self.get(operand)).ndim >= 2:
                raise NotImplementedError("block-dependent scf.for bounds cannot batch")
        super()._for(op)


#: lane budget per batched pass (blocks are chunked to bound memory)
LANE_CHUNK = 1 << 19


def launch_batched(
    fn,
    grid: tuple[int, int, int],
    block: tuple[int, int, int],
    flat_buffers,
    arguments: Sequence,
    result,
    block_ids,
    warp_size: int,
    sector_bytes: int,
) -> int:
    """Run ``block_ids`` of the launch grid in vectorized batches.

    Mirrors the per-block loop of :func:`repro.mlir.interp.run_gpu_kernel`
    (same buffer mutation, same counters in ``result``); returns the
    per-block shared-allocation total.
    """
    ids = np.asarray(list(block_ids), dtype=np.int64)
    threads = block[0] * block[1] * block[2]
    blocks_per_chunk = max(1, LANE_CHUNK // max(1, threads))
    smem_per_block = 0
    for start in range(0, ids.size, blocks_per_chunk):
        executor = _BatchedExecutor(
            ids[start:start + blocks_per_chunk], block, grid, flat_buffers, result,
            warp_size=warp_size, sector_bytes=sector_bytes,
        )
        for value, array in zip(fn.arguments, arguments):
            if isinstance(value.type, MemRefType):
                executor.set(value, value)
            else:
                executor.set(value, array)
        executor.run_block(fn.body)
        smem_per_block = max(smem_per_block, executor.shared_allocated)
    return smem_per_block
