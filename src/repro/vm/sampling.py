"""Exact evenly-spaced sample selection.

The substrates used to pick sampled programs/blocks with
``sorted({int(i * step) for i in range(count)})`` — a float stride plus
set-dedup, which can silently collapse to fewer ids than requested and
skew the ``scaled()`` extrapolation.  :func:`evenly_spaced` is the
shared exact replacement: pure integer arithmetic, always exactly
``count`` strictly increasing ids when ``count <= total``.
"""

from __future__ import annotations

__all__ = ["evenly_spaced"]


def evenly_spaced(total: int, count: int) -> list[int]:
    """``count`` distinct, strictly increasing ids evenly spread over ``range(total)``.

    ``i * total // count`` is integer throughout, starts at 0, and is
    strictly increasing whenever ``count <= total`` (consecutive values
    differ by ``floor`` of a stride >= 1), so the selection is exact by
    construction.  ``count >= total`` returns the full range.
    """
    total, count = int(total), int(count)
    if total <= 0:
        return []
    if count >= total:
        return list(range(total))
    if count <= 0:
        return []
    return [i * total // count for i in range(count)]
