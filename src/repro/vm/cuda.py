"""Whole-grid batched execution for the mini-CUDA substrate.

The tree-walk launcher interprets one :class:`BlockContext` per thread
block.  The batched context here represents *every* launched block at
once: ``ctx.blockIdx.x/y/z`` are ``(B, 1)`` arrays, so index arithmetic
against the per-thread ``(T,)`` coordinate arrays broadcasts to
``(B, T)`` — one row per block.  The shape convention is the whole
protocol: an access whose physical index array is 2-D with leading
extent ``B`` differs per block; anything of rank <= 1 is block-uniform
and repeats identically in every block (recorded once, multiplied by
``B``).

Kernels cooperate through two small control-flow hooks that the
tree-walk :class:`BlockContext` also implements (so kernels stay
single-source):

* ``ctx.where_blocks(cond)`` — narrow to the blocks satisfying a
  per-block predicate (the batched form of an early ``return``);
* ``ctx.compact_threads(mask)`` — select active lanes per block (the
  batched form of boolean-compressing the thread arrays), preserving the
  tree-walk's per-block warp chunking of the compacted lane order.

Shared-memory arrays get one slab per block (``(B, words)``); global
arrays are untouched — their ``_record`` dispatches to the context's
``record_global``, which synthesizes the per-warp sector counts with
:mod:`repro.vm.batch`.
"""

from __future__ import annotations

from types import SimpleNamespace
from typing import Callable, Sequence

import numpy as np

from ..core.bijection import flatten_index
from ..minicuda.runtime import BlockContext, CudaTrace, Dim3
from ..minicuda.smem import _layout_table
from .batch import chunk_keys, grouped_conflict_degrees, grouped_unique_count

__all__ = ["BatchedBlockContext", "launch_batched"]


def _per_block_values(raw: np.ndarray, batch: int, block_shape: tuple) -> np.ndarray:
    """Broadcast a store value to ``(batch,) + block_shape``.

    Values of rank >= 2 whose leading extent is the batch count carry one
    slice per block; leading singleton block axes (an artifact of the
    ``(B, 1)`` block-index arrays) are squeezed until the per-block shape
    lines up.  Anything else is block-uniform and broadcasts right-aligned.
    """
    if raw.ndim >= 2 and raw.shape[0] == batch:
        per_block = raw.shape[1:]
        while len(per_block) > len(block_shape) and per_block[0] == 1:
            per_block = per_block[1:]
            raw = raw.reshape((batch,) + per_block)
    return np.broadcast_to(raw, (batch,) + tuple(block_shape))


class BatchedSharedArray:
    """Per-block shared memory for a batched context: ``data`` is ``(B, words)``.

    Mirrors :class:`repro.minicuda.SharedArray` — logical indexing through
    the same layout table, identical byte and bank-conflict accounting —
    but holds every active block's buffer as one row.
    """

    def __init__(self, shape: Sequence[int], dtype=np.float32, layout=None,
                 name: str = "smem", context=None):
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.name = name
        self.layout = layout
        self._table = _layout_table(layout, self.shape)
        size = 1
        for extent in self.shape:
            size *= extent
        self._context = context
        self.batch = context._batch
        self.data = np.zeros((self.batch, size), dtype=self.dtype)

    @property
    def nbytes(self) -> int:
        """Bytes *per block*, matching the tree-walk allocation accounting."""
        return int(self.data.nbytes // self.batch)

    def _physical(self, indices: tuple) -> np.ndarray:
        if len(indices) != len(self.shape):
            raise ValueError(
                f"{self.name} has {len(self.shape)} logical dimensions, got {len(indices)} indices"
            )
        arrays = [np.asarray(idx, dtype=np.int64) for idx in indices]
        arrays = np.broadcast_arrays(*arrays)
        for axis, (arr, extent) in enumerate(zip(arrays, self.shape)):
            if arr.size and (arr.min() < 0 or arr.max() >= extent):
                raise IndexError(
                    f"{self.name}: axis {axis} index out of range [0, {extent}) "
                    f"(got [{arr.min()}, {arr.max()}])"
                )
        logical_flat = np.asarray(flatten_index(arrays, self.shape), dtype=np.int64)
        if self._table is None:
            return logical_flat
        return self._table[logical_flat]

    def _classify(self, physical: np.ndarray) -> bool:
        if physical.ndim == 2 and physical.shape[0] == self.batch:
            return True
        if physical.ndim <= 1:
            return False
        raise TypeError(
            f"{self.name}: cannot classify a rank-{physical.ndim} access under batching"
        )

    def _record(self, physical: np.ndarray, batched: bool, is_store: bool) -> None:
        ctx = self._context
        trace = ctx.trace
        if trace is None:
            return
        warp_size = getattr(ctx, "warp_size", 32)
        itemsize = self.dtype.itemsize
        if batched:
            lanes = physical.shape[1]
            keys = chunk_keys(self.batch, lanes, warp_size)
            degrees = grouped_conflict_degrees(keys, physical, itemsize)
            nbytes = float(self.batch * lanes) * itemsize
        else:
            flat = physical.reshape(-1)
            keys = chunk_keys(1, flat.size, warp_size)
            degrees = np.tile(grouped_conflict_degrees(keys, flat, itemsize), self.batch)
            nbytes = float(self.batch * flat.size) * itemsize
        if is_store:
            trace.smem_store_bytes += nbytes
        else:
            trace.smem_load_bytes += nbytes
        trace.smem_profile.record_many(degrees)

    def load(self, *indices) -> np.ndarray:
        physical = self._physical(indices)
        batched = self._classify(physical)
        self._record(physical, batched, is_store=False)
        if batched:
            return self.data[np.arange(self.batch)[:, None], physical]
        flat = physical.reshape(-1)
        return self.data[:, flat].reshape((self.batch,) + physical.shape)

    def store(self, value, *indices) -> None:
        physical = self._physical(indices)
        batched = self._classify(physical)
        self._record(physical, batched, is_store=True)
        raw = np.asarray(value, dtype=self.dtype)
        if batched:
            values = _per_block_values(raw, self.batch, physical.shape[1:])
            self.data[np.arange(self.batch)[:, None], physical] = values
            return
        values = _per_block_values(raw, self.batch, physical.shape)
        self.data[:, physical.reshape(-1)] = values.reshape(self.batch, -1)

    def __getitem__(self, indices):
        if not isinstance(indices, tuple):
            indices = (indices,)
        return self.load(*indices)

    def __setitem__(self, indices, value):
        if not isinstance(indices, tuple):
            indices = (indices,)
        self.store(value, *indices)

    def to_numpy(self) -> np.ndarray:
        """Every block's logical view: ``(B,) + logical shape``."""
        if self._table is None:
            return self.data.reshape((self.batch,) + self.shape).copy()
        return self.data[:, self._table].reshape((self.batch,) + self.shape)

    def __repr__(self) -> str:
        return f"BatchedSharedArray({self.name}, B={self.batch}, shape={self.shape})"


class _CompactedThreads:
    """Active lanes of a batched context after ``compact_threads(mask)``.

    Lanes are flattened block-major (C order over the ``(B, T)`` mask),
    which is exactly the order the tree-walk sees: each block's compacted
    lanes, block after block.  Warp chunks therefore restart at every
    block boundary — the precomputed ``_keys`` encode (block, chunk).
    """

    def __init__(self, parent, mask: np.ndarray):
        self._parent = parent
        self._mask = mask
        rows = np.nonzero(mask)[0]
        counts = mask.sum(axis=1)
        starts = np.concatenate(([0], np.cumsum(counts)[:-1]))
        position_in_block = np.arange(rows.size, dtype=np.int64) - starts[rows]
        warp_size = parent.warp_size
        max_chunks = int(-(-mask.shape[1] // warp_size))
        self._keys = rows * max_chunks + position_in_block // warp_size

    @property
    def trace(self):
        return self._parent.trace

    @property
    def warp_size(self):
        return self._parent.warp_size

    @property
    def sector_bytes(self):
        return self._parent.sector_bytes

    def compact(self, values) -> np.ndarray:
        """Select the active lanes of a per-lane value (flat, block-major)."""
        return np.broadcast_to(np.asarray(values), self._mask.shape)[self._mask]

    def count_flops(self, flops: float) -> None:
        # compacted flop counts are already lane-sums across blocks
        if self._parent.trace is not None:
            self._parent.trace.flops += float(flops)

    def record_global(self, physical: np.ndarray, element_bytes: int,
                      is_store: bool, default_sector: int = 32) -> None:
        trace = self._parent.trace
        if trace is None:
            return
        sector_bytes = self._parent.sector_bytes or default_sector
        flat = physical.reshape(-1)
        if flat.size != self._keys.size:
            raise TypeError("compacted access does not match the active lane count")
        count = float(flat.size)
        sectors = flat * element_bytes // sector_bytes
        transactions = float(grouped_unique_count(self._keys, sectors))
        _bump_global(trace, is_store, count, count * element_bytes, transactions)


def _bump_global(trace: CudaTrace, is_store: bool, count: float,
                 nbytes: float, transactions: float) -> None:
    if is_store:
        trace.store_elements += count
        trace.store_bytes += nbytes
        trace.store_transactions += transactions
    else:
        trace.load_elements += count
        trace.load_bytes += nbytes
        trace.load_transactions += transactions


class BatchedBlockContext:
    """All launched blocks of one (chunk of a) grid, executed at once."""

    def __init__(
        self,
        block_ids: np.ndarray,
        block_dim: Dim3,
        grid_dim: Dim3,
        trace: CudaTrace | None,
        warp_size: int = 32,
        sector_bytes: int | None = None,
        _alloc_sizes: list | None = None,
    ):
        batch = int(block_ids.size)
        bx = (block_ids % grid_dim.x).reshape(batch, 1)
        by = ((block_ids // grid_dim.x) % grid_dim.y).reshape(batch, 1)
        bz = (block_ids // (grid_dim.x * grid_dim.y)).reshape(batch, 1)
        self.blockIdx = SimpleNamespace(x=bx, y=by, z=bz)
        self.blockDim = block_dim
        self.gridDim = grid_dim
        self.trace = trace
        self.warp_size = warp_size
        self.sector_bytes = sector_bytes
        self._batch = batch
        count = block_dim.count
        linear = np.arange(count, dtype=np.int64)
        self.thread_linear = linear
        self.tx = linear % block_dim.x
        self.ty = (linear // block_dim.x) % block_dim.y
        self.tz = linear // (block_dim.x * block_dim.y)
        # shared with narrowed sub-contexts so the launcher reads the
        # per-block allocation total off the root context
        self._alloc_sizes = _alloc_sizes if _alloc_sizes is not None else []

    @property
    def num_threads(self) -> int:
        return self.blockDim.count

    def syncthreads(self) -> None:
        """Barrier: a no-op — whole blocks execute in lockstep here too."""

    def shared_array(self, shape: Sequence[int], dtype=np.float32, layout=None,
                     name: str = "smem") -> BatchedSharedArray:
        array = BatchedSharedArray(shape, dtype=dtype, layout=layout, name=name, context=self)
        self._alloc_sizes.append(array.nbytes)
        return array

    def smem_bytes_allocated(self) -> int:
        """Per-block shared allocation total (what one tree-walk block allocates)."""
        return int(sum(self._alloc_sizes))

    def count_flops(self, flops: float) -> None:
        # a block-uniform flop count is paid by every block
        if self.trace is not None:
            self.trace.flops += float(flops) * self._batch

    # -- control-flow hooks -------------------------------------------------

    def where_blocks(self, condition):
        """Narrow to the blocks where ``condition`` holds (``None`` if empty)."""
        keep = np.asarray(condition, dtype=bool).reshape(-1)
        if keep.size != self._batch:
            raise TypeError(
                f"where_blocks predicate has {keep.size} entries for {self._batch} blocks"
            )
        if keep.all():
            return self
        if not keep.any():
            return None
        narrowed = object.__new__(BatchedBlockContext)
        narrowed.blockIdx = SimpleNamespace(
            x=self.blockIdx.x[keep], y=self.blockIdx.y[keep], z=self.blockIdx.z[keep]
        )
        narrowed.blockDim = self.blockDim
        narrowed.gridDim = self.gridDim
        narrowed.trace = self.trace
        narrowed.warp_size = self.warp_size
        narrowed.sector_bytes = self.sector_bytes
        narrowed._batch = int(keep.sum())
        narrowed.thread_linear = self.thread_linear
        narrowed.tx, narrowed.ty, narrowed.tz = self.tx, self.ty, self.tz
        narrowed._alloc_sizes = self._alloc_sizes
        return narrowed

    def compact_threads(self, mask):
        """Select active lanes per block (``None`` when no lane is active)."""
        mask = np.broadcast_to(
            np.asarray(mask, dtype=bool), (self._batch, self.blockDim.count)
        )
        if not mask.any():
            return None
        return _CompactedThreads(self, mask)

    # -- global-memory accounting (dispatch target of GlobalArray._record) --

    def record_global(self, physical: np.ndarray, element_bytes: int,
                      is_store: bool, default_sector: int = 32) -> None:
        trace = self.trace
        if trace is None:
            return
        sector_bytes = self.sector_bytes or default_sector
        if physical.ndim == 2 and physical.shape[0] == self._batch:
            lanes = physical.shape[1]
            count = float(self._batch * lanes)
            keys = chunk_keys(self._batch, lanes, self.warp_size)
            sectors = physical * element_bytes // sector_bytes
            transactions = float(grouped_unique_count(keys, sectors))
        elif physical.ndim <= 1:
            # block-uniform access: every block repeats the same pattern
            flat = physical.reshape(-1)
            count = float(flat.size) * self._batch
            byte_addresses = flat * element_bytes
            per_block = 0
            for start in range(0, flat.size, self.warp_size):
                sectors = np.unique(byte_addresses[start:start + self.warp_size] // sector_bytes)
                per_block += int(sectors.size)
            transactions = float(per_block) * self._batch
        else:
            raise TypeError(
                f"cannot classify a rank-{physical.ndim} global access under batching"
            )
        _bump_global(trace, is_store, count, count * element_bytes, transactions)


#: lane budget per batched pass (blocks are chunked so that
#: ``blocks_per_chunk * threads_per_block`` stays near this)
LANE_CHUNK = 1 << 19


def launch_batched(
    kernel: Callable,
    grid: Dim3,
    block: Dim3,
    args: Sequence,
    run_trace: CudaTrace | None,
    block_ids,
    warp_size: int,
    sector_bytes: int | None,
) -> int:
    """Run ``block_ids`` of the grid in vectorized batches.

    Mutates global arrays and accumulates into ``run_trace`` exactly as
    the per-block loop would; returns the per-block shared-memory
    allocation total (the launcher's ``max_smem``).
    """
    ids = np.asarray(list(block_ids), dtype=np.int64)
    blocks_per_chunk = max(1, LANE_CHUNK // max(1, block.count))
    max_smem = 0
    for start in range(0, ids.size, blocks_per_chunk):
        ctx = BatchedBlockContext(
            ids[start:start + blocks_per_chunk], block, grid, run_trace,
            warp_size=warp_size, sector_bytes=sector_bytes,
        )
        kernel(ctx, *args)
        max_smem = max(max_smem, ctx.smem_bytes_allocated())
    return max_smem
