"""Mini-CUDA: a block/thread execution model with memory accounting.

The paper's CUDA experiments (NW, LUD, the brick stencils) measure effects
that are entirely determined by *how kernels touch memory*: shared-memory
bank conflicts, global-memory coalescing, data-movement volume and the amount
of work per thread block.  This substrate replaces the CUDA runtime with a
NumPy-backed execution model that

* runs kernels block-by-block with all threads of a block vectorised
  (:func:`launch`), honouring ``blockIdx`` / ``threadIdx`` / ``blockDim``;
* provides shared-memory arrays whose accesses are routed through a LEGO
  layout and whose per-warp bank conflicts are recorded
  (:class:`SharedArray`);
* provides global-memory views whose per-warp sector transactions are
  recorded (:class:`GlobalArray`);
* converts the recorded counters into a :class:`repro.gpusim.KernelCost`
  for the analytic device model (:func:`trace_to_cost`).

Functional correctness is checked by running full launches at small problem
sizes; performance estimation traces a sample of blocks and scales.
"""

from .runtime import BlockContext, CudaTrace, Dim3, launch
from .smem import GlobalArray, SharedArray
from .trace import trace_to_cost

__all__ = [
    "Dim3",
    "BlockContext",
    "CudaTrace",
    "launch",
    "SharedArray",
    "GlobalArray",
    "trace_to_cost",
]
