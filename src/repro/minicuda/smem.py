"""Shared- and global-memory arrays with layout redirection and accounting.

``SharedArray`` is the reproduction of the paper's NW integration style: the
kernel keeps addressing the buffer with its *logical* multi-dimensional
indices, and the array redirects each access through a LEGO layout's
``apply`` bijection (the CUDA wrapper-class trick of Section V-B).  Every
warp's access is scored for bank conflicts against the 32-bank model, which
is exactly the effect the anti-diagonal layout removes.

``GlobalArray`` wraps a flat NumPy buffer and records per-warp sector
transactions for coalescing analysis.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.bijection import flatten_index
from ..gpusim.sharedmem import warp_conflict_degree

__all__ = ["SharedArray", "GlobalArray"]


def _layout_table(layout, shape: tuple[int, ...]) -> np.ndarray | None:
    """Precompute ``logical flat -> physical flat`` for a concrete layout."""
    if layout is None:
        return None
    table = layout.permutation_vector()
    expected = 1
    for extent in shape:
        expected *= extent
    if table.size != expected:
        raise ValueError(
            f"layout maps {table.size} elements but the array has {expected}"
        )
    return table


class SharedArray:
    """A shared-memory array addressed by logical indices through a layout.

    ``shape`` is the logical shape the kernel indexes with; ``layout`` (a
    concrete :class:`repro.core.GroupBy`, or ``None`` for row-major) maps the
    logical index to the physical word the element lives in.  Accesses take
    per-thread NumPy index arrays; each access is split into warps and its
    bank-conflict degree recorded into the launch trace.
    """

    def __init__(self, shape: Sequence[int], dtype=np.float32, layout=None, name: str = "smem", context=None):
        self.shape = tuple(int(s) for s in shape)
        self.dtype = np.dtype(dtype)
        self.name = name
        self.layout = layout
        self._table = _layout_table(layout, self.shape)
        size = 1
        for extent in self.shape:
            size *= extent
        self.data = np.zeros(size, dtype=self.dtype)
        self._context = context

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    # -- index handling -----------------------------------------------------------

    def _physical(self, indices: tuple) -> np.ndarray:
        """Map per-thread logical indices to physical element offsets."""
        if len(indices) != len(self.shape):
            raise ValueError(
                f"{self.name} has {len(self.shape)} logical dimensions, got {len(indices)} indices"
            )
        arrays = [np.asarray(idx, dtype=np.int64) for idx in indices]
        arrays = np.broadcast_arrays(*arrays)
        for axis, (arr, extent) in enumerate(zip(arrays, self.shape)):
            if arr.size and (arr.min() < 0 or arr.max() >= extent):
                raise IndexError(
                    f"{self.name}: axis {axis} index out of range [0, {extent}) "
                    f"(got [{arr.min()}, {arr.max()}])"
                )
        logical_flat = np.asarray(flatten_index(arrays, self.shape), dtype=np.int64)
        if self._table is None:
            return logical_flat
        return self._table[logical_flat]

    def _record(self, physical: np.ndarray, is_store: bool) -> None:
        ctx = self._context
        if ctx is None or ctx.trace is None:
            return
        trace = ctx.trace
        flat = physical.reshape(-1)
        nbytes = float(flat.size) * self.dtype.itemsize
        if is_store:
            trace.smem_store_bytes += nbytes
        else:
            trace.smem_load_bytes += nbytes
        # Score bank conflicts warp by warp over the block's thread order.
        warp_size = getattr(ctx, "warp_size", 32)
        for start in range(0, flat.size, warp_size):
            lane_indices = flat[start : start + warp_size]
            degree = warp_conflict_degree(lane_indices, element_bytes=self.dtype.itemsize)
            trace.smem_profile.record(degree)

    # -- accesses -----------------------------------------------------------------

    def load(self, *indices) -> np.ndarray:
        physical = self._physical(indices)
        self._record(physical, is_store=False)
        return self.data[physical]

    def store(self, value, *indices) -> None:
        physical = self._physical(indices)
        self._record(physical, is_store=True)
        self.data[physical] = np.broadcast_to(np.asarray(value, dtype=self.dtype), physical.shape)

    # ``buf[i, j]`` sugar used by the ported Rodinia kernels
    def __getitem__(self, indices):
        if not isinstance(indices, tuple):
            indices = (indices,)
        return self.load(*indices)

    def __setitem__(self, indices, value):
        if not isinstance(indices, tuple):
            indices = (indices,)
        self.store(value, *indices)

    def to_numpy(self) -> np.ndarray:
        """The logical-view contents (undoing the layout), as a dense array."""
        if self._table is None:
            return self.data.reshape(self.shape).copy()
        logical = np.empty_like(self.data)
        logical[np.arange(self.data.size)] = self.data[self._table]
        return logical.reshape(self.shape)

    def __repr__(self) -> str:
        layout_name = "row-major" if self.layout is None else repr(self.layout)
        return f"SharedArray({self.name}, shape={self.shape}, layout={layout_name})"


class GlobalArray:
    """A global-memory array with per-warp sector-transaction accounting.

    ``layout`` (optional, concrete) redirects logical indices to physical
    positions exactly as for :class:`SharedArray` — this is how the brick
    data layout is applied to the stencil grids without touching kernel code.
    """

    def __init__(self, array: np.ndarray, layout=None, name: str = "gmem", sector_bytes: int = 32):
        array = np.asarray(array)
        self.shape = array.shape
        self.dtype = array.dtype
        self.name = name
        self.layout = layout
        self.sector_bytes = sector_bytes
        self._table = _layout_table(layout, tuple(int(s) for s in array.shape))
        logical_flat = np.ascontiguousarray(array).reshape(-1).copy()
        if self._table is None:
            self.data = logical_flat
        else:
            # scatter the logical contents into their physical positions
            self.data = np.empty_like(logical_flat)
            self.data[self._table] = logical_flat

    @property
    def nbytes(self) -> int:
        return int(self.data.nbytes)

    def _physical(self, indices: tuple) -> np.ndarray:
        if len(indices) != len(self.shape):
            raise ValueError(
                f"{self.name} has {len(self.shape)} logical dimensions, got {len(indices)} indices"
            )
        arrays = [np.asarray(idx, dtype=np.int64) for idx in indices]
        arrays = np.broadcast_arrays(*arrays)
        for axis, (arr, extent) in enumerate(zip(arrays, self.shape)):
            if arr.size and (arr.min() < 0 or arr.max() >= extent):
                raise IndexError(
                    f"{self.name}: axis {axis} index out of range [0, {extent}) "
                    f"(got [{arr.min()}, {arr.max()}])"
                )
        logical_flat = np.asarray(flatten_index(arrays, self.shape), dtype=np.int64)
        if self._table is None:
            return logical_flat
        return self._table[logical_flat]

    def _record(self, ctx, physical: np.ndarray, is_store: bool) -> None:
        if ctx is None or ctx.trace is None:
            return
        # batched contexts (repro.vm.cuda) synthesize the same counters from
        # the whole-grid index array instead of per-warp Python loops
        recorder = getattr(ctx, "record_global", None)
        if recorder is not None:
            recorder(physical, self.dtype.itemsize, is_store, self.sector_bytes)
            return
        trace = ctx.trace
        flat = physical.reshape(-1)
        element_bytes = self.dtype.itemsize
        count = float(flat.size)
        # count sector transactions warp by warp; warp width and sector
        # granularity come from the launch context (i.e. the DeviceSpec)
        # when it provides them, so recording matches the device model
        transactions = 0
        warp_size = getattr(ctx, "warp_size", 32)
        sector_bytes = getattr(ctx, "sector_bytes", None) or self.sector_bytes
        byte_addresses = flat * element_bytes
        for start in range(0, flat.size, warp_size):
            sectors = np.unique(byte_addresses[start : start + warp_size] // sector_bytes)
            transactions += int(sectors.size)
        if is_store:
            trace.store_elements += count
            trace.store_bytes += count * element_bytes
            trace.store_transactions += transactions
        else:
            trace.load_elements += count
            trace.load_bytes += count * element_bytes
            trace.load_transactions += transactions

    def load(self, ctx, *indices) -> np.ndarray:
        physical = self._physical(indices)
        self._record(ctx, physical, is_store=False)
        return self.data[physical]

    def store(self, ctx, value, *indices) -> None:
        physical = self._physical(indices)
        self._record(ctx, physical, is_store=True)
        self.data[physical] = np.broadcast_to(np.asarray(value, dtype=self.dtype), physical.shape)

    def to_numpy(self) -> np.ndarray:
        """The logical-view contents (undoing the layout), as a dense array."""
        if self._table is None:
            return self.data.reshape(self.shape).copy()
        logical = np.empty_like(self.data)
        logical[np.arange(self.data.size)] = self.data[self._table]
        return logical.reshape(self.shape)

    def __repr__(self) -> str:
        layout_name = "row-major" if self.layout is None else repr(self.layout)
        return f"GlobalArray({self.name}, shape={self.shape}, layout={layout_name})"
