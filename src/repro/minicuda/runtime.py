"""Block/thread execution model for the mini-CUDA substrate.

A kernel is an ordinary Python function ``kernel(ctx, *args)`` receiving a
:class:`BlockContext` for one thread block.  Inside the kernel all threads of
the block are represented *vectorised*: ``ctx.tx`` / ``ctx.ty`` / ``ctx.tz``
are NumPy arrays with one entry per thread, and shared/global accesses take
such per-thread index arrays.  This mirrors how a warp-synchronous CUDA
kernel reads on paper while keeping the Python interpreter overhead per block
(not per thread).

:func:`launch` runs the kernel over a grid of blocks (optionally a sample of
them, scaling the recorded counters) and returns a :class:`CudaTrace` with
the accumulated global-memory traffic and shared-memory conflict profile.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from ..gpusim.sharedmem import ConflictProfile

__all__ = ["Dim3", "BlockContext", "CudaTrace", "launch"]


@dataclass(frozen=True)
class Dim3:
    """A CUDA ``dim3``: up to three extents, missing ones default to 1."""

    x: int = 1
    y: int = 1
    z: int = 1

    @staticmethod
    def of(value) -> "Dim3":
        if isinstance(value, Dim3):
            return value
        if isinstance(value, int):
            return Dim3(value)
        parts = tuple(int(v) for v in value)
        while len(parts) < 3:
            parts = parts + (1,)
        return Dim3(*parts[:3])

    @property
    def count(self) -> int:
        return self.x * self.y * self.z

    def __iter__(self):
        return iter((self.x, self.y, self.z))


@dataclass
class CudaTrace:
    """Counters accumulated over one launch (scaled to the full grid)."""

    #: global memory
    load_elements: float = 0.0
    store_elements: float = 0.0
    load_bytes: float = 0.0
    store_bytes: float = 0.0
    load_transactions: float = 0.0
    store_transactions: float = 0.0
    #: shared memory
    smem_load_bytes: float = 0.0
    smem_store_bytes: float = 0.0
    smem_profile: ConflictProfile = field(default_factory=ConflictProfile)
    #: arithmetic
    flops: float = 0.0
    #: launch geometry
    blocks: int = 0
    threads_per_block: int = 0
    executed_blocks: int = 0
    smem_per_block: int = 0
    #: DRAM sector granularity (bytes) the transaction counters were
    #: recorded at (see :class:`GlobalArray`); the trace->cost adapter
    #: charges moved bytes at the same size
    sector_bytes: int = 32
    scale: float = 1.0
    extras: dict = field(default_factory=dict)

    @property
    def dram_bytes(self) -> float:
        return self.load_bytes + self.store_bytes

    @property
    def smem_bytes(self) -> float:
        return self.smem_load_bytes + self.smem_store_bytes

    @property
    def bank_conflict_factor(self) -> float:
        return self.smem_profile.average_degree

    @property
    def sampled(self) -> bool:
        """Only a sample of the grid executed, so global arrays are partial.

        Survives :meth:`scaled` (which resets ``scale`` but keeps both block
        counts); the differential runner refuses sampled traces.
        """
        return self.executed_blocks < self.blocks

    def scaled(self) -> "CudaTrace":
        """Return a copy with all extensive counters scaled to the full grid."""
        out = CudaTrace(
            load_elements=self.load_elements * self.scale,
            store_elements=self.store_elements * self.scale,
            load_bytes=self.load_bytes * self.scale,
            store_bytes=self.store_bytes * self.scale,
            load_transactions=self.load_transactions * self.scale,
            store_transactions=self.store_transactions * self.scale,
            smem_load_bytes=self.smem_load_bytes * self.scale,
            smem_store_bytes=self.smem_store_bytes * self.scale,
            flops=self.flops * self.scale,
            blocks=self.blocks,
            threads_per_block=self.threads_per_block,
            executed_blocks=self.executed_blocks,
            smem_per_block=self.smem_per_block,
            sector_bytes=self.sector_bytes,
            scale=1.0,
        )
        out.smem_profile = self.smem_profile
        out.extras = dict(self.extras)
        return out


class BlockContext:
    """Execution context of one thread block (all threads vectorised).

    ``tx`` / ``ty`` / ``tz`` are ``int64`` arrays of length ``blockDim.count``
    holding each thread's coordinates; ``thread_linear`` is the linear thread
    id used to group threads into warps for conflict/coalescing accounting.
    """

    def __init__(
        self,
        block_idx: Dim3,
        block_dim: Dim3,
        grid_dim: Dim3,
        trace: CudaTrace | None,
        warp_size: int = 32,
        sector_bytes: int | None = None,
    ):
        self.blockIdx = block_idx
        self.blockDim = block_dim
        self.gridDim = grid_dim
        self.trace = trace
        #: warp width accesses are grouped by for conflict/coalescing
        #: accounting; the launcher sets it from the target device
        self.warp_size = warp_size
        #: DRAM sector granularity for transaction counting (``None``: each
        #: :class:`~repro.minicuda.GlobalArray` falls back to its own)
        self.sector_bytes = sector_bytes
        count = block_dim.count
        linear = np.arange(count, dtype=np.int64)
        self.thread_linear = linear
        self.tx = linear % block_dim.x
        self.ty = (linear // block_dim.x) % block_dim.y
        self.tz = linear // (block_dim.x * block_dim.y)
        self._shared: list = []

    # -- CUDA-style queries -----------------------------------------------------

    @property
    def num_threads(self) -> int:
        return self.blockDim.count

    def syncthreads(self) -> None:
        """Barrier: a no-op because threads execute in lockstep here."""

    # -- shared memory ------------------------------------------------------------

    def shared_array(self, shape: Sequence[int], dtype=np.float32, layout=None, name: str = "smem"):
        """Allocate a shared-memory array for this block (see :class:`SharedArray`)."""
        from .smem import SharedArray

        array = SharedArray(shape, dtype=dtype, layout=layout, name=name, context=self)
        self._shared.append(array)
        return array

    def smem_bytes_allocated(self) -> int:
        return int(sum(a.nbytes for a in self._shared))

    # -- arithmetic accounting ------------------------------------------------------

    def count_flops(self, flops: float) -> None:
        if self.trace is not None:
            self.trace.flops += float(flops)

    # -- control-flow hooks ----------------------------------------------------------

    def where_blocks(self, condition):
        """Keep executing only when this block satisfies ``condition``.

        The batched context (:mod:`repro.vm.cuda`) narrows to the subset of
        blocks where the per-block predicate holds; here the predicate is a
        scalar, so the result is either this context or ``None``.  Kernels
        use it in place of an early ``return`` so the same source runs under
        both engines.
        """
        return self if bool(condition) else None

    def compact_threads(self, mask):
        """Restrict to the active lanes of ``mask`` (``None`` when all idle).

        ``ctx.compact(x)`` on the returned context selects the active lanes
        of a per-thread array — the engine-neutral spelling of boolean
        compression like ``x[mask]``.
        """
        mask = np.broadcast_to(np.asarray(mask, dtype=bool), (self.num_threads,))
        if not mask.any():
            return None
        return _CompactThreads(self, mask)

    # -- warp helpers ---------------------------------------------------------------

    def iter_warps(self, active: np.ndarray | None = None, warp_size: int | None = None):
        """Yield per-warp boolean masks over the block's threads."""
        count = self.num_threads
        warp_size = warp_size or self.warp_size
        for start in range(0, count, warp_size):
            mask = np.zeros(count, dtype=bool)
            mask[start : start + warp_size] = True
            if active is not None:
                mask &= active
            if mask.any():
                yield mask


class _CompactThreads:
    """The active lanes of one block, as seen by array accesses.

    Exposes the accounting attributes (``trace`` / ``warp_size`` /
    ``sector_bytes`` / ``count_flops``) of the parent block so global
    accesses through it record exactly as they would through the block
    context with pre-compressed index arrays.
    """

    def __init__(self, ctx: "BlockContext", mask: np.ndarray):
        self._ctx = ctx
        self._mask = mask

    @property
    def trace(self):
        return self._ctx.trace

    @property
    def warp_size(self):
        return self._ctx.warp_size

    @property
    def sector_bytes(self):
        return self._ctx.sector_bytes

    def compact(self, values) -> np.ndarray:
        """Select the active lanes of a per-thread value."""
        return np.broadcast_to(np.asarray(values), self._mask.shape)[self._mask]

    def count_flops(self, flops: float) -> None:
        self._ctx.count_flops(flops)


def launch(
    kernel: Callable,
    grid,
    block,
    args: Sequence = (),
    trace: bool = True,
    sample_blocks: int | None = None,
    device=None,
) -> CudaTrace:
    """Run ``kernel`` over ``grid`` x ``block`` threads.

    ``kernel`` is called once per thread block as ``kernel(ctx, *args)``.
    With ``sample_blocks=N`` only ``N`` evenly spaced blocks execute and the
    returned trace is scaled to the full grid (use sampling for performance
    estimation only — results written to global arrays are then partial).
    ``device`` (a :class:`~repro.gpusim.DeviceSpec`) sets the warp width and
    DRAM sector granularity the accounting uses instead of the CUDA-default
    32/32.
    """
    grid = Dim3.of(grid)
    block = Dim3.of(block)
    total_blocks = grid.count
    warp_size = device.warp_size if device is not None else 32
    sector_bytes = device.dram_sector_bytes if device is not None else None
    run_trace = CudaTrace(sector_bytes=sector_bytes or 32) if trace else None

    if sample_blocks is None or sample_blocks >= total_blocks:
        block_ids = range(total_blocks)
        scale = 1.0
    else:
        if sample_blocks <= 0:
            raise ValueError("sample_blocks must be positive")
        from ..vm.sampling import evenly_spaced

        block_ids = evenly_spaced(total_blocks, sample_blocks)
        scale = total_blocks / len(block_ids)

    max_smem = 0
    executed = False
    from ..vm.engine import engine_mode

    mode = engine_mode()
    if mode != "treewalk" and len(block_ids) > 1:
        from .smem import GlobalArray
        from ..vm.cuda import launch_batched

        # snapshot global arrays so a mid-flight batched failure can fall
        # back to a clean tree-walk run
        snapshots = [
            (value, value.data.copy()) for value in args if isinstance(value, GlobalArray)
        ]
        attempt = CudaTrace(sector_bytes=sector_bytes or 32) if trace else None
        try:
            max_smem = launch_batched(
                kernel, grid, block, args, attempt, block_ids,
                warp_size=warp_size, sector_bytes=sector_bytes,
            )
            executed = True
            if run_trace is not None and attempt is not None:
                run_trace.load_elements = attempt.load_elements
                run_trace.store_elements = attempt.store_elements
                run_trace.load_bytes = attempt.load_bytes
                run_trace.store_bytes = attempt.store_bytes
                run_trace.load_transactions = attempt.load_transactions
                run_trace.store_transactions = attempt.store_transactions
                run_trace.smem_load_bytes = attempt.smem_load_bytes
                run_trace.smem_store_bytes = attempt.smem_store_bytes
                run_trace.smem_profile = attempt.smem_profile
                run_trace.flops = attempt.flops
        except Exception as exc:
            if mode == "vectorized-strict":
                raise
            max_smem = 0
            for array, saved in snapshots:
                array.data[:] = saved
            from ..obs import record_vm_fallback

            record_vm_fallback("minicuda", kernel, exc)

    if not executed:
        for flat in block_ids:
            bx = flat % grid.x
            by = (flat // grid.x) % grid.y
            bz = flat // (grid.x * grid.y)
            ctx = BlockContext(
                Dim3(bx, by, bz), block, grid, run_trace,
                warp_size=warp_size, sector_bytes=sector_bytes,
            )
            kernel(ctx, *args)
            max_smem = max(max_smem, ctx.smem_bytes_allocated())

    if run_trace is None:
        run_trace = CudaTrace()
    run_trace.blocks = total_blocks
    run_trace.threads_per_block = block.count
    run_trace.executed_blocks = len(list(block_ids))
    run_trace.smem_per_block = max_smem
    run_trace.scale = scale
    return run_trace.scaled()
