"""Convert mini-CUDA launch traces into analytic kernel costs.

Kept as the substrate-local spelling of the unified trace->cost adapter
protocol (:mod:`repro.perf.adapters`), which owns the implementation: DRAM
bytes are charged from the *transaction* counts (sectors actually moved at
the granularity the trace was recorded at — taken from the
:class:`~repro.gpusim.DeviceSpec`, never a hardcoded 32), so poorly
coalesced kernels are charged for the full sectors they touch; shared-memory
traffic carries the measured average bank-conflict serialisation factor.
"""

from __future__ import annotations

from ..gpusim.device import A100_80GB, DeviceSpec
from ..gpusim.kernelmodel import KernelCost
from .runtime import CudaTrace

__all__ = ["trace_to_cost"]


def trace_to_cost(
    trace: CudaTrace,
    name: str = "kernel",
    dtype: str = "fp32",
    tensor_core: bool = False,
    compute_efficiency: float = 0.85,
    dram_efficiency: float = 0.85,
    launches: int | None = None,
    device: DeviceSpec = A100_80GB,
) -> KernelCost:
    """Summarise a :class:`CudaTrace` as a :class:`KernelCost`.

    Thin wrapper over :func:`repro.perf.adapters.cuda_trace_to_cost` with
    the historical argument order preserved.  ``launches`` defaults to the
    trace's own record (``extras['launches']`` on merged multi-launch
    traces, else 1), exactly like the unified adapter.
    """
    from ..perf.adapters import cuda_trace_to_cost

    return cuda_trace_to_cost(
        trace,
        device,
        name=name,
        dtype=dtype,
        tensor_core=tensor_core,
        compute_efficiency=compute_efficiency,
        dram_efficiency=dram_efficiency,
        launches=launches,
    )
