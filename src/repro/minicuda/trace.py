"""Convert mini-CUDA launch traces into analytic kernel costs."""

from __future__ import annotations

from ..gpusim.kernelmodel import KernelCost
from .runtime import CudaTrace

__all__ = ["trace_to_cost"]


def trace_to_cost(
    trace: CudaTrace,
    name: str = "kernel",
    dtype: str = "fp32",
    tensor_core: bool = False,
    compute_efficiency: float = 0.85,
    dram_efficiency: float = 0.85,
    launches: int = 1,
) -> KernelCost:
    """Summarise a :class:`CudaTrace` as a :class:`KernelCost`.

    DRAM bytes are taken from the *transaction* counts (sectors actually
    moved), not the useful element counts, so poorly coalesced kernels are
    charged for the full sectors they touch; shared-memory traffic carries the
    measured average bank-conflict serialisation factor.
    """
    sector_bytes = 32.0
    moved_bytes = (trace.load_transactions + trace.store_transactions) * sector_bytes
    useful_bytes = trace.load_bytes + trace.store_bytes
    dram_bytes = max(moved_bytes, useful_bytes)
    return KernelCost(
        name=name,
        flops=trace.flops,
        dtype=dtype,
        tensor_core=tensor_core,
        dram_bytes=dram_bytes,
        smem_bytes=trace.smem_bytes,
        bank_conflict_factor=trace.bank_conflict_factor,
        threads=float(trace.blocks * trace.threads_per_block),
        blocks=float(trace.blocks),
        threads_per_block=float(trace.threads_per_block),
        smem_per_block=float(trace.smem_per_block),
        compute_efficiency=compute_efficiency,
        dram_efficiency=dram_efficiency,
        launches=launches,
    )
