"""Dialect op constructors: ``arith``, ``memref``, ``gpu``, ``scf``, ``func``.

Each helper wraps :meth:`repro.mlir.ir.OpBuilder.insert` with the operand and
result types of the corresponding MLIR operation, so emission code reads like
MLIR builder code:

    c0 = arith.constant(b, 0)
    tid = gpu.thread_id(b, "x")
    value = memref.load(b, buffer, [row, col])
"""

from __future__ import annotations

from typing import Sequence

from .ir import Block, FuncOp, Module, OpBuilder, Operation, Region, Value
from .types import F32, INDEX, FloatType, IndexType, IntType, MemRefType, Type

__all__ = ["arith", "memref", "gpu", "scf", "func", "build_gpu_module"]


class arith:
    """Constructors for the ``arith`` dialect subset."""

    @staticmethod
    def constant(builder: OpBuilder, value: int | float, type: Type = INDEX) -> Value:
        def make() -> Value:
            op = builder.insert(
                "arith.constant", [], [type], {"value": value}, result_hint="c"
            )
            return op.result

        return builder.cached_constant(("const", str(type), value), make)

    @staticmethod
    def _binary(builder: OpBuilder, name: str, lhs: Value, rhs: Value) -> Value:
        return builder.insert(f"arith.{name}", [lhs, rhs], [lhs.type]).result

    @staticmethod
    def addi(builder: OpBuilder, lhs: Value, rhs: Value) -> Value:
        return arith._binary(builder, "addi", lhs, rhs)

    @staticmethod
    def subi(builder: OpBuilder, lhs: Value, rhs: Value) -> Value:
        return arith._binary(builder, "subi", lhs, rhs)

    @staticmethod
    def muli(builder: OpBuilder, lhs: Value, rhs: Value) -> Value:
        return arith._binary(builder, "muli", lhs, rhs)

    @staticmethod
    def divsi(builder: OpBuilder, lhs: Value, rhs: Value) -> Value:
        return arith._binary(builder, "divsi", lhs, rhs)

    @staticmethod
    def remsi(builder: OpBuilder, lhs: Value, rhs: Value) -> Value:
        return arith._binary(builder, "remsi", lhs, rhs)

    @staticmethod
    def minsi(builder: OpBuilder, lhs: Value, rhs: Value) -> Value:
        return arith._binary(builder, "minsi", lhs, rhs)

    @staticmethod
    def maxsi(builder: OpBuilder, lhs: Value, rhs: Value) -> Value:
        return arith._binary(builder, "maxsi", lhs, rhs)

    @staticmethod
    def addf(builder: OpBuilder, lhs: Value, rhs: Value) -> Value:
        return arith._binary(builder, "addf", lhs, rhs)

    @staticmethod
    def mulf(builder: OpBuilder, lhs: Value, rhs: Value) -> Value:
        return arith._binary(builder, "mulf", lhs, rhs)

    @staticmethod
    def cmpi(builder: OpBuilder, predicate: str, lhs: Value, rhs: Value) -> Value:
        return builder.insert(
            "arith.cmpi", [lhs, rhs], [IntType(1)], {"predicate": predicate}
        ).result

    @staticmethod
    def select(builder: OpBuilder, cond: Value, true_value: Value, false_value: Value) -> Value:
        return builder.insert(
            "arith.select", [cond, true_value, false_value], [true_value.type]
        ).result

    @staticmethod
    def index_cast(builder: OpBuilder, value: Value, type: Type = INDEX) -> Value:
        return builder.insert("arith.index_cast", [value], [type]).result


class memref:
    """Constructors for the ``memref`` dialect subset."""

    @staticmethod
    def alloc(builder: OpBuilder, type: MemRefType) -> Value:
        return builder.insert("memref.alloc", [], [type], result_hint="buf").result

    @staticmethod
    def load(builder: OpBuilder, source: Value, indices: Sequence[Value]) -> Value:
        if not isinstance(source.type, MemRefType):
            raise TypeError(f"memref.load expects a memref operand, got {source.type}")
        return builder.insert(
            "memref.load", [source, *indices], [source.type.element_type]
        ).result

    @staticmethod
    def store(builder: OpBuilder, value: Value, dest: Value, indices: Sequence[Value]) -> Operation:
        if not isinstance(dest.type, MemRefType):
            raise TypeError(f"memref.store expects a memref operand, got {dest.type}")
        return builder.insert("memref.store", [value, dest, *indices], [])


class gpu:
    """Constructors for the ``gpu`` dialect subset."""

    DIMENSIONS = ("x", "y", "z")

    @staticmethod
    def _id(builder: OpBuilder, name: str, dimension: str) -> Value:
        if dimension not in gpu.DIMENSIONS:
            raise ValueError(f"gpu dimension must be one of {gpu.DIMENSIONS}, got {dimension!r}")
        return builder.insert(name, [], [INDEX], {"dimension": dimension}).result

    @staticmethod
    def thread_id(builder: OpBuilder, dimension: str) -> Value:
        return gpu._id(builder, "gpu.thread_id", dimension)

    @staticmethod
    def block_id(builder: OpBuilder, dimension: str) -> Value:
        return gpu._id(builder, "gpu.block_id", dimension)

    @staticmethod
    def block_dim(builder: OpBuilder, dimension: str) -> Value:
        return gpu._id(builder, "gpu.block_dim", dimension)

    @staticmethod
    def grid_dim(builder: OpBuilder, dimension: str) -> Value:
        return gpu._id(builder, "gpu.grid_dim", dimension)

    @staticmethod
    def barrier(builder: OpBuilder) -> Operation:
        return builder.insert("gpu.barrier", [], [])

    @staticmethod
    def func(module: Module, name: str, argument_types: Sequence[Type]) -> FuncOp:
        """Create a ``gpu.func`` kernel and add it to the module."""
        fn = FuncOp(name=name, kind="gpu.func", attributes={"gpu.kernel": True})
        for index, arg_type in enumerate(argument_types):
            value = Value(name=f"arg{index}", type=arg_type, is_block_arg=True)
            fn.arguments.append(value)
            fn.body.arguments.append(value)
        module.add_function(fn)
        return fn

    @staticmethod
    def return_(builder: OpBuilder) -> Operation:
        return builder.insert("gpu.return", [], [])


class scf:
    """Constructors for the ``scf`` dialect subset (structured control flow)."""

    @staticmethod
    def for_(
        builder: OpBuilder,
        lower: Value,
        upper: Value,
        step: Value,
    ) -> tuple[Operation, OpBuilder, Value]:
        """Create ``scf.for`` and return (op, body builder, induction variable)."""
        body = Block()
        induction = body.add_argument(builder.fresh_name("iv"), INDEX)
        region = Region(blocks=[body])
        op = builder.insert("scf.for", [lower, upper, step], [], regions=[region])
        return op, builder.at_block(body), induction

    @staticmethod
    def yield_(builder: OpBuilder) -> Operation:
        return builder.insert("scf.yield", [], [])


class func:
    """Constructors for the ``func`` dialect subset."""

    @staticmethod
    def func(module: Module, name: str, argument_types: Sequence[Type], result_types: Sequence[Type] = ()) -> FuncOp:
        fn = FuncOp(name=name, kind="func.func", result_types=list(result_types))
        for index, arg_type in enumerate(argument_types):
            value = Value(name=f"arg{index}", type=arg_type, is_block_arg=True)
            fn.arguments.append(value)
            fn.body.arguments.append(value)
        module.add_function(fn)
        return fn

    @staticmethod
    def return_(builder: OpBuilder, values: Sequence[Value] = ()) -> Operation:
        return builder.insert("func.return", list(values), [])


def build_gpu_module(name: str = "lego_module") -> Module:
    """A module pre-tagged as containing GPU kernels."""
    return Module(attributes={"gpu.container_module": True, "sym_name": name})
