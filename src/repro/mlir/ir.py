"""Core IR objects: modules, functions, blocks, operations, SSA values.

The structure follows MLIR closely enough that the printer's output reads as
MLIR and the verifier can enforce the usual SSA rules:

* a :class:`Module` holds a list of :class:`FuncOp`;
* a :class:`FuncOp` (``func.func`` or ``gpu.func``) has typed block arguments
  and a single :class:`Block` body (the subset we emit never branches);
* a :class:`Operation` has a dialect-qualified name, operand values, result
  values, attributes, and optionally nested regions (used by ``scf.for``);
* :class:`OpBuilder` appends operations to a block and hands out fresh SSA
  names.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

from .types import Type

__all__ = ["Value", "Operation", "Block", "Region", "FuncOp", "Module", "OpBuilder"]


@dataclass(eq=False)
class Value:
    """An SSA value: a name, a type and the operation (or block) defining it."""

    name: str
    type: Type
    defining_op: Optional["Operation"] = None
    is_block_arg: bool = False

    def __str__(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"%{self.name}: {self.type}"


@dataclass(eq=False)
class Operation:
    """One operation: ``results = name(operands) {attributes}``."""

    name: str
    operands: list[Value] = field(default_factory=list)
    results: list[Value] = field(default_factory=list)
    attributes: dict[str, object] = field(default_factory=dict)
    regions: list["Region"] = field(default_factory=list)

    @property
    def result(self) -> Value:
        if len(self.results) != 1:
            raise ValueError(f"operation {self.name} has {len(self.results)} results")
        return self.results[0]

    def __repr__(self) -> str:
        results = ", ".join(str(r) for r in self.results)
        operands = ", ".join(str(o) for o in self.operands)
        prefix = f"{results} = " if results else ""
        return f"{prefix}{self.name}({operands})"


@dataclass(eq=False)
class Block:
    """A straight-line block of operations with typed arguments."""

    arguments: list[Value] = field(default_factory=list)
    operations: list[Operation] = field(default_factory=list)

    def add_argument(self, name: str, type: Type) -> Value:
        value = Value(name=name, type=type, is_block_arg=True)
        self.arguments.append(value)
        return value

    def append(self, op: Operation) -> Operation:
        self.operations.append(op)
        return op

    def __iter__(self):
        return iter(self.operations)


@dataclass(eq=False)
class Region:
    """A region: a list of blocks (we only ever use single-block regions)."""

    blocks: list[Block] = field(default_factory=list)

    @property
    def entry(self) -> Block:
        if not self.blocks:
            self.blocks.append(Block())
        return self.blocks[0]


@dataclass(eq=False)
class FuncOp:
    """A function-like operation (``func.func`` or ``gpu.func``)."""

    name: str
    arguments: list[Value] = field(default_factory=list)
    result_types: list[Type] = field(default_factory=list)
    body: Block = field(default_factory=Block)
    kind: str = "func.func"  # or "gpu.func"
    attributes: dict[str, object] = field(default_factory=dict)

    def argument(self, index: int) -> Value:
        return self.arguments[index]

    def __repr__(self) -> str:
        args = ", ".join(repr(a) for a in self.arguments)
        return f"{self.kind} @{self.name}({args})"


@dataclass(eq=False)
class Module:
    """A top-level module holding functions and module-level attributes."""

    functions: list[FuncOp] = field(default_factory=list)
    attributes: dict[str, object] = field(default_factory=dict)

    def add_function(self, func: FuncOp) -> FuncOp:
        self.functions.append(func)
        return func

    def get_function(self, name: str) -> FuncOp:
        for func in self.functions:
            if func.name == name:
                return func
        raise KeyError(f"no function named {name!r} in module")

    def __iter__(self):
        return iter(self.functions)


class OpBuilder:
    """Appends operations to a block and manages SSA value names."""

    def __init__(self, block: Block, name_prefix: str = "v"):
        self.block = block
        self._prefix = name_prefix
        self._counter = itertools.count()
        self._constants: dict[tuple, Value] = {}

    def fresh_name(self, hint: str | None = None) -> str:
        return f"{hint or self._prefix}{next(self._counter)}"

    def insert(
        self,
        name: str,
        operands: Sequence[Value] = (),
        result_types: Sequence[Type] = (),
        attributes: Mapping[str, object] | None = None,
        regions: Iterable[Region] = (),
        result_hint: str | None = None,
    ) -> Operation:
        """Create an operation, append it to the block and return it."""
        op = Operation(
            name=name,
            operands=list(operands),
            attributes=dict(attributes or {}),
            regions=list(regions),
        )
        for result_type in result_types:
            value = Value(name=self.fresh_name(result_hint), type=result_type, defining_op=op)
            op.results.append(value)
        self.block.append(op)
        return op

    def cached_constant(self, key: tuple, make) -> Value:
        """Deduplicate constants (``arith.constant``) within one block."""
        if key not in self._constants:
            self._constants[key] = make()
        return self._constants[key]

    def at_block(self, block: Block) -> "OpBuilder":
        """A builder inserting into ``block`` but sharing this builder's names."""
        child = OpBuilder.__new__(OpBuilder)
        child.block = block
        child._prefix = self._prefix
        child._counter = self._counter
        child._constants = {}
        return child
