"""Interpreter for ``gpu.func`` kernels emitted by the LEGO MLIR backend.

The interpreter executes one thread block at a time with all threads of the
block vectorised (each SSA value is either a per-thread NumPy array or a
uniform scalar), mirroring the mini-CUDA substrate.  Global memrefs are NumPy
buffers shared across blocks; workgroup (shared) memrefs are allocated per
block.  Loads and stores record the per-warp sector transactions and
shared-memory bank conflicts that feed the analytic device model.

Supported operations: the ``arith`` / ``memref`` / ``gpu`` / ``scf`` subset
produced by :mod:`repro.codegen.mlir`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from ..gpusim.sharedmem import ConflictProfile, warp_conflict_degree
from .ir import Block, FuncOp, Module, Operation, Value
from .types import MemRefType

__all__ = ["GpuLaunchResult", "run_gpu_kernel"]

#: CUDA defaults, used when no DeviceSpec is supplied to the launcher
_WARP = 32
_SECTOR_BYTES = 32


@dataclass
class GpuLaunchResult:
    """Traffic counters accumulated while interpreting a launch."""

    load_elements: float = 0.0
    store_elements: float = 0.0
    load_bytes: float = 0.0
    store_bytes: float = 0.0
    load_transactions: float = 0.0
    store_transactions: float = 0.0
    smem_bytes: float = 0.0
    smem_profile: ConflictProfile = field(default_factory=ConflictProfile)
    flops: float = 0.0
    blocks: int = 0
    threads_per_block: int = 0
    executed_blocks: int = 0
    smem_per_block: int = 0
    #: DRAM sector granularity (bytes) the transaction counters were
    #: recorded at; moved-byte accounting uses the same size
    sector_bytes: int = _SECTOR_BYTES
    scale: float = 1.0

    @property
    def dram_bytes(self) -> float:
        return self.load_bytes + self.store_bytes

    @property
    def moved_dram_bytes(self) -> float:
        return (self.load_transactions + self.store_transactions) * float(self.sector_bytes)

    @property
    def bank_conflict_factor(self) -> float:
        return self.smem_profile.average_degree

    @property
    def sampled(self) -> bool:
        """Only a sample of the grid executed, so memref contents are partial."""
        return self.executed_blocks < self.blocks

    def scaled(self) -> "GpuLaunchResult":
        out = GpuLaunchResult(
            load_elements=self.load_elements * self.scale,
            store_elements=self.store_elements * self.scale,
            load_bytes=self.load_bytes * self.scale,
            store_bytes=self.store_bytes * self.scale,
            load_transactions=self.load_transactions * self.scale,
            store_transactions=self.store_transactions * self.scale,
            smem_bytes=self.smem_bytes * self.scale,
            flops=self.flops * self.scale,
            blocks=self.blocks,
            threads_per_block=self.threads_per_block,
            executed_blocks=self.executed_blocks,
            smem_per_block=self.smem_per_block,
            sector_bytes=self.sector_bytes,
            scale=1.0,
        )
        out.smem_profile = self.smem_profile
        return out


class _BlockExecutor:
    """Executes one function body for one thread block."""

    def __init__(
        self,
        block_idx: tuple[int, int, int],
        block_dim: tuple[int, int, int],
        grid_dim: tuple[int, int, int],
        memrefs: Mapping[int, np.ndarray],
        result: GpuLaunchResult,
        warp_size: int = _WARP,
        sector_bytes: int = _SECTOR_BYTES,
    ):
        self.block_idx = block_idx
        self.block_dim = block_dim
        self.grid_dim = grid_dim
        self.warp_size = warp_size
        self.sector_bytes = sector_bytes
        self.memrefs = dict(memrefs)  # id(Value) -> flat numpy buffer
        self.memref_types: dict[int, MemRefType] = {}
        self.shared_allocated = 0
        self.result = result
        count = block_dim[0] * block_dim[1] * block_dim[2]
        linear = np.arange(count, dtype=np.int64)
        self.thread_ids = {
            "x": linear % block_dim[0],
            "y": (linear // block_dim[0]) % block_dim[1],
            "z": linear // (block_dim[0] * block_dim[1]),
        }
        self.values: dict[int, object] = {}

    # -- value helpers ------------------------------------------------------------

    def get(self, value: Value):
        try:
            return self.values[id(value)]
        except KeyError as exc:
            raise KeyError(f"use of undefined SSA value {value}") from exc

    def set(self, value: Value, concrete) -> None:
        self.values[id(value)] = concrete

    # -- execution ------------------------------------------------------------------

    def run_block(self, block: Block) -> None:
        for op in block.operations:
            self.run_operation(op)

    def run_operation(self, op: Operation) -> None:
        name = op.name
        if name == "arith.constant":
            self.set(op.result, op.attributes["value"])
        elif name in ("arith.addi", "arith.addf"):
            self.set(op.result, self.get(op.operands[0]) + self.get(op.operands[1]))
            self._count_flops(op)
        elif name in ("arith.subi",):
            self.set(op.result, self.get(op.operands[0]) - self.get(op.operands[1]))
        elif name in ("arith.muli", "arith.mulf"):
            self.set(op.result, self.get(op.operands[0]) * self.get(op.operands[1]))
            self._count_flops(op)
        elif name == "arith.divsi":
            self.set(op.result, self.get(op.operands[0]) // self.get(op.operands[1]))
        elif name == "arith.remsi":
            self.set(op.result, self.get(op.operands[0]) % self.get(op.operands[1]))
        elif name == "arith.minsi":
            self.set(op.result, np.minimum(self.get(op.operands[0]), self.get(op.operands[1])))
        elif name == "arith.maxsi":
            self.set(op.result, np.maximum(self.get(op.operands[0]), self.get(op.operands[1])))
        elif name == "arith.cmpi":
            self.set(op.result, self._compare(op))
        elif name == "arith.select":
            cond = self.get(op.operands[0])
            self.set(op.result, np.where(cond, self.get(op.operands[1]), self.get(op.operands[2])))
        elif name == "arith.index_cast":
            self.set(op.result, self.get(op.operands[0]))
        elif name == "gpu.thread_id":
            self.set(op.result, self.thread_ids[op.attributes["dimension"]])
        elif name == "gpu.block_id":
            axis = "xyz".index(op.attributes["dimension"])
            self.set(op.result, self.block_idx[axis])
        elif name == "gpu.block_dim":
            axis = "xyz".index(op.attributes["dimension"])
            self.set(op.result, self.block_dim[axis])
        elif name == "gpu.grid_dim":
            axis = "xyz".index(op.attributes["dimension"])
            self.set(op.result, self.grid_dim[axis])
        elif name == "gpu.barrier":
            pass  # threads execute in lockstep
        elif name in ("gpu.return", "func.return", "scf.yield"):
            pass
        elif name == "memref.alloc":
            self._alloc(op)
        elif name == "memref.load":
            self._load(op)
        elif name == "memref.store":
            self._store(op)
        elif name == "scf.for":
            self._for(op)
        else:
            raise NotImplementedError(f"interpreter does not support {name}")

    def _count_flops(self, op: Operation) -> None:
        if op.name.endswith("f"):
            value = self.values.get(id(op.results[0])) if op.results else None
            size = np.asarray(value).size if value is not None else 1
            self.result.flops += float(size)

    def _compare(self, op: Operation):
        predicate = op.attributes["predicate"]
        lhs = self.get(op.operands[0])
        rhs = self.get(op.operands[1])
        table = {
            "eq": np.equal,
            "ne": np.not_equal,
            "slt": np.less,
            "sle": np.less_equal,
            "sgt": np.greater,
            "sge": np.greater_equal,
        }
        return table[predicate](lhs, rhs)

    # -- memory ----------------------------------------------------------------------

    def _alloc(self, op: Operation) -> None:
        memref_type = op.result.type
        if not isinstance(memref_type, MemRefType):
            raise TypeError("memref.alloc result must be a memref")
        buffer = np.zeros(memref_type.num_elements, dtype=memref_type.element_type.np_dtype)
        self.memrefs[id(op.result)] = buffer
        self.memref_types[id(op.result)] = memref_type
        if memref_type.memory_space == 3:
            self.shared_allocated += int(buffer.nbytes)
        self.set(op.result, op.result)

    def _flat_offsets(self, source: Value, index_values: Sequence) -> np.ndarray:
        memref_type = source.type
        assert isinstance(memref_type, MemRefType)
        shape = memref_type.shape
        arrays = [np.asarray(v, dtype=np.int64) for v in index_values]
        arrays = np.broadcast_arrays(*arrays) if len(arrays) > 1 else [np.asarray(arrays[0])]
        flat = arrays[0]
        for extent, coords in zip(shape[1:], arrays[1:]):
            flat = flat * extent + coords
        return np.atleast_1d(flat)

    def _buffer_of(self, source: Value) -> np.ndarray:
        key = id(source)
        if key in self.memrefs:
            return self.memrefs[key]
        # block argument bound through values (e.g. forwarded memref)
        bound = self.values.get(key)
        if bound is not None and id(bound) in self.memrefs:
            return self.memrefs[id(bound)]
        raise KeyError(f"memref {source} is not bound to a buffer")

    def _record_global(self, offsets: np.ndarray, element_bytes: int, is_store: bool) -> None:
        flat = offsets.reshape(-1)
        count = float(flat.size)
        transactions = 0
        warp, sector = self.warp_size, self.sector_bytes
        byte_addresses = flat * element_bytes
        for start in range(0, flat.size, warp):
            transactions += int(np.unique(byte_addresses[start : start + warp] // sector).size)
        if is_store:
            self.result.store_elements += count
            self.result.store_bytes += count * element_bytes
            self.result.store_transactions += transactions
        else:
            self.result.load_elements += count
            self.result.load_bytes += count * element_bytes
            self.result.load_transactions += transactions

    def _record_shared(self, offsets: np.ndarray, element_bytes: int) -> None:
        flat = offsets.reshape(-1)
        warp = self.warp_size
        self.result.smem_bytes += float(flat.size) * element_bytes
        for start in range(0, flat.size, warp):
            degree = warp_conflict_degree(flat[start : start + warp], element_bytes=element_bytes)
            self.result.smem_profile.record(degree)

    def _load(self, op: Operation) -> None:
        source = op.operands[0]
        memref_type = source.type
        assert isinstance(memref_type, MemRefType)
        buffer = self._buffer_of(source)
        offsets = self._flat_offsets(source, [self.get(v) for v in op.operands[1:]])
        element_bytes = buffer.dtype.itemsize
        if memref_type.memory_space == 3:
            self._record_shared(offsets, element_bytes)
        else:
            self._record_global(offsets, element_bytes, is_store=False)
        self.set(op.result, buffer[offsets])

    def _store(self, op: Operation) -> None:
        value = self.get(op.operands[0])
        dest = op.operands[1]
        memref_type = dest.type
        assert isinstance(memref_type, MemRefType)
        buffer = self._buffer_of(dest)
        offsets = self._flat_offsets(dest, [self.get(v) for v in op.operands[2:]])
        element_bytes = buffer.dtype.itemsize
        if memref_type.memory_space == 3:
            self._record_shared(offsets, element_bytes)
        else:
            self._record_global(offsets, element_bytes, is_store=True)
        buffer[offsets] = np.broadcast_to(np.asarray(value, dtype=buffer.dtype), offsets.shape)

    # -- control flow -----------------------------------------------------------------

    def _for(self, op: Operation) -> None:
        lower = int(np.asarray(self.get(op.operands[0])).reshape(-1)[0])
        upper = int(np.asarray(self.get(op.operands[1])).reshape(-1)[0])
        step = int(np.asarray(self.get(op.operands[2])).reshape(-1)[0])
        body = op.regions[0].blocks[0]
        induction = body.arguments[0]
        for iv in range(lower, upper, step):
            self.set(induction, iv)
            self.run_block(body)


def run_gpu_kernel(
    module: Module,
    kernel_name: str,
    grid: tuple[int, int, int],
    block: tuple[int, int, int],
    arguments: Sequence[np.ndarray],
    sample_blocks: int | None = None,
    device=None,
) -> GpuLaunchResult:
    """Interpret ``kernel_name`` from ``module`` over a launch grid.

    ``arguments`` are NumPy arrays bound (in order) to the kernel's memref
    arguments; they are mutated in place by ``memref.store``.  With
    ``sample_blocks`` only a subset of blocks executes and counters are
    scaled (results are then partial — use for performance tracing only).
    ``device`` (a :class:`~repro.gpusim.DeviceSpec`) supplies the warp width
    and DRAM sector granularity the traffic accounting uses instead of the
    CUDA-default 32/32.
    """
    fn = module.get_function(kernel_name)
    if fn.kind != "gpu.func":
        raise ValueError(f"{kernel_name!r} is not a gpu.func kernel")
    if len(arguments) != len(fn.arguments):
        raise ValueError(
            f"kernel {kernel_name!r} expects {len(fn.arguments)} arguments, got {len(arguments)}"
        )

    flat_buffers: dict[int, np.ndarray] = {}
    for value, array in zip(fn.arguments, arguments):
        if isinstance(value.type, MemRefType):
            expected = value.type.num_elements
            flat = np.ascontiguousarray(array).reshape(-1)
            if flat.size != expected:
                raise ValueError(
                    f"argument for {value} has {flat.size} elements, expected {expected}"
                )
            flat_buffers[id(value)] = flat

    warp_size = device.warp_size if device is not None else _WARP
    sector_bytes = device.dram_sector_bytes if device is not None else _SECTOR_BYTES
    result = GpuLaunchResult(sector_bytes=sector_bytes)
    grid = tuple(int(g) for g in grid)
    block = tuple(int(b) for b in block)
    total_blocks = grid[0] * grid[1] * grid[2]

    if sample_blocks is None or sample_blocks >= total_blocks:
        block_ids = range(total_blocks)
        scale = 1.0
    else:
        from ..vm.sampling import evenly_spaced

        block_ids = evenly_spaced(total_blocks, sample_blocks)
        scale = total_blocks / len(block_ids)

    smem_per_block = 0
    executed = False
    from ..vm.engine import engine_mode

    mode = engine_mode()
    if mode != "treewalk" and len(block_ids) > 1:
        from ..vm.mlir import launch_batched

        # snapshot argument buffers so a mid-flight batched failure can
        # fall back to a clean tree-walk run
        snapshots = [(buf, buf.copy()) for buf in flat_buffers.values()]
        attempt = GpuLaunchResult(sector_bytes=sector_bytes)
        try:
            smem_per_block = launch_batched(
                fn, grid, block, flat_buffers, arguments, attempt, block_ids,
                warp_size=warp_size, sector_bytes=sector_bytes,
            )
            executed = True
            result.load_elements = attempt.load_elements
            result.store_elements = attempt.store_elements
            result.load_bytes = attempt.load_bytes
            result.store_bytes = attempt.store_bytes
            result.load_transactions = attempt.load_transactions
            result.store_transactions = attempt.store_transactions
            result.smem_bytes = attempt.smem_bytes
            result.smem_profile = attempt.smem_profile
            result.flops = attempt.flops
        except Exception as exc:
            if mode == "vectorized-strict":
                raise
            smem_per_block = 0
            for buf, saved in snapshots:
                buf[:] = saved
            from ..obs import record_vm_fallback

            record_vm_fallback("mlir", fn, exc)

    if not executed:
        for flat in block_ids:
            bx = flat % grid[0]
            by = (flat // grid[0]) % grid[1]
            bz = flat // (grid[0] * grid[1])
            executor = _BlockExecutor(
                (bx, by, bz), block, grid, flat_buffers, result,
                warp_size=warp_size, sector_bytes=sector_bytes,
            )
            for value, array in zip(fn.arguments, arguments):
                if isinstance(value.type, MemRefType):
                    executor.set(value, value)
                else:
                    executor.set(value, array)
            executor.run_block(fn.body)
            smem_per_block = max(smem_per_block, executor.shared_allocated)

    result.blocks = total_blocks
    result.threads_per_block = block[0] * block[1] * block[2]
    result.executed_blocks = len(list(block_ids))
    result.smem_per_block = smem_per_block
    result.scale = scale
    return result.scaled()
