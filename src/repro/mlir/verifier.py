"""Structural and SSA verification of the mini MLIR IR.

Checks performed (a practical subset of what ``mlir-opt -verify-diagnostics``
would enforce for the emitted modules):

* every operand is defined before use (by an earlier operation, an enclosing
  region's block argument, or the function's arguments);
* every SSA value is defined exactly once;
* ``memref.load`` / ``memref.store`` index counts match the memref rank and
  the indices have ``index`` type;
* ``gpu.func`` bodies terminate with ``gpu.return``; ``func.func`` bodies
  terminate with ``func.return``;
* ``scf.for`` bodies terminate with ``scf.yield``;
* operations with a known arity have the right number of operands.
"""

from __future__ import annotations

from .ir import Block, FuncOp, Module, Operation, Value
from .types import IndexType, MemRefType

__all__ = ["VerificationError", "verify_module", "verify_function"]


class VerificationError(ValueError):
    """Raised when the module violates a structural rule."""


_BINARY_ARITH = {
    "arith.addi",
    "arith.subi",
    "arith.muli",
    "arith.divsi",
    "arith.remsi",
    "arith.minsi",
    "arith.maxsi",
    "arith.addf",
    "arith.mulf",
}


def _check_operands_defined(op: Operation, defined: set[int], func_name: str) -> None:
    for operand in op.operands:
        if id(operand) not in defined:
            raise VerificationError(
                f"{func_name}: operand {operand} of {op.name} used before definition"
            )


def _verify_block(block: Block, defined: set[int], func_name: str, terminator: str | None) -> None:
    for argument in block.arguments:
        defined.add(id(argument))
    for op in block.operations:
        _check_operands_defined(op, defined, func_name)
        _verify_operation(op, defined, func_name)
        for result in op.results:
            if id(result) in defined:
                raise VerificationError(f"{func_name}: value {result} defined twice")
            defined.add(id(result))
    if terminator is not None:
        if not block.operations or block.operations[-1].name != terminator:
            raise VerificationError(
                f"{func_name}: block must terminate with {terminator}"
            )


def _verify_operation(op: Operation, defined: set[int], func_name: str) -> None:
    if op.name in _BINARY_ARITH and len(op.operands) != 2:
        raise VerificationError(f"{func_name}: {op.name} expects 2 operands, got {len(op.operands)}")
    if op.name == "memref.load":
        _verify_memref_access(op, op.operands[0], op.operands[1:], func_name)
    if op.name == "memref.store":
        _verify_memref_access(op, op.operands[1], op.operands[2:], func_name)
    if op.name == "scf.for":
        if len(op.operands) != 3:
            raise VerificationError(f"{func_name}: scf.for expects 3 operands (lb, ub, step)")
        if not op.regions or not op.regions[0].blocks:
            raise VerificationError(f"{func_name}: scf.for requires a body region")
        body_defined = set(defined)
        _verify_block(op.regions[0].blocks[0], body_defined, func_name, terminator="scf.yield")
    elif op.regions:
        for region in op.regions:
            for block in region.blocks:
                _verify_block(block, set(defined), func_name, terminator=None)


def _verify_memref_access(op: Operation, source: Value, indices, func_name: str) -> None:
    if not isinstance(source.type, MemRefType):
        raise VerificationError(
            f"{func_name}: {op.name} source must be a memref, got {source.type}"
        )
    rank = len(source.type.shape)
    if len(indices) != rank:
        raise VerificationError(
            f"{func_name}: {op.name} on rank-{rank} memref needs {rank} indices, got {len(indices)}"
        )
    for index in indices:
        if not isinstance(index.type, IndexType):
            raise VerificationError(
                f"{func_name}: {op.name} index {index} must have index type, got {index.type}"
            )


def verify_function(fn: FuncOp) -> None:
    defined: set[int] = {id(argument) for argument in fn.arguments}
    terminator = "gpu.return" if fn.kind == "gpu.func" else "func.return"
    _verify_block(fn.body, defined, fn.name, terminator=terminator)


def verify_module(module: Module) -> None:
    """Verify every function; raises :class:`VerificationError` on failure."""
    names = set()
    for fn in module.functions:
        if fn.name in names:
            raise VerificationError(f"duplicate function name {fn.name!r}")
        names.add(fn.name)
        verify_function(fn)
