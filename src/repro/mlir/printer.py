"""Textual form of the mini MLIR IR (generic op syntax, MLIR-flavoured)."""

from __future__ import annotations

from .ir import Block, FuncOp, Module, Operation

__all__ = ["print_module", "print_function", "print_operation"]

_INDENT = "  "


def _format_attr(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        return f'"{value}"'
    return str(value)


def print_operation(op: Operation, indent: int = 0) -> str:
    pad = _INDENT * indent
    results = ", ".join(str(r) for r in op.results)
    prefix = f"{results} = " if results else ""
    operands = ", ".join(str(o) for o in op.operands)
    attrs = ""
    if op.attributes:
        inner = ", ".join(f"{k} = {_format_attr(v)}" for k, v in sorted(op.attributes.items()))
        attrs = f" {{{inner}}}"
    types = ""
    if op.results:
        types = " : " + ", ".join(str(r.type) for r in op.results)
    elif op.operands:
        types = " : " + ", ".join(str(o.type) for o in op.operands)
    lines = [f"{pad}{prefix}{op.name}({operands}){attrs}{types}"]
    for region in op.regions:
        lines.append(f"{pad}{{")
        for block in region.blocks:
            lines.append(_print_block(block, indent + 1))
        lines.append(f"{pad}}}")
    return "\n".join(lines)


def _print_block(block: Block, indent: int) -> str:
    pad = _INDENT * indent
    lines = []
    if block.arguments:
        args = ", ".join(f"{a}: {a.type}" for a in block.arguments)
        lines.append(f"{pad}^bb0({args}):")
    for op in block.operations:
        lines.append(print_operation(op, indent))
    return "\n".join(lines)


def print_function(fn: FuncOp, indent: int = 0) -> str:
    pad = _INDENT * indent
    args = ", ".join(f"{a}: {a.type}" for a in fn.arguments)
    results = ""
    if fn.result_types:
        results = " -> (" + ", ".join(str(t) for t in fn.result_types) + ")"
    attrs = ""
    if fn.attributes:
        inner = ", ".join(f"{k} = {_format_attr(v)}" for k, v in sorted(fn.attributes.items()))
        attrs = f" attributes {{{inner}}}"
    lines = [f"{pad}{fn.kind} @{fn.name}({args}){results}{attrs} {{"]
    for op in fn.body.operations:
        lines.append(print_operation(op, indent + 1))
    lines.append(f"{pad}}}")
    return "\n".join(lines)


def print_module(module: Module) -> str:
    attrs = ""
    if module.attributes:
        inner = ", ".join(f"{k} = {_format_attr(v)}" for k, v in sorted(module.attributes.items()))
        attrs = f" attributes {{{inner}}}"
    lines = [f"module{attrs} {{"]
    for fn in module.functions:
        lines.append(print_function(fn, 1))
    lines.append("}")
    return "\n".join(lines)
