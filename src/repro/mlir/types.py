"""MLIR-style types for the mini IR: index, integers, floats, memrefs."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

__all__ = ["Type", "IndexType", "IntType", "FloatType", "MemRefType", "F32", "F16", "I32", "INDEX"]


class Type:
    """Base class of IR types."""

    def __str__(self) -> str:  # pragma: no cover - overridden
        raise NotImplementedError

    def __repr__(self) -> str:
        return str(self)

    def __eq__(self, other) -> bool:
        return type(self) is type(other) and str(self) == str(other)

    def __hash__(self) -> int:
        return hash(str(self))


class IndexType(Type):
    """The MLIR ``index`` type."""

    def __str__(self) -> str:
        return "index"


@dataclass(frozen=True, eq=False)
class IntType(Type):
    """Signless integer type ``iN``."""

    width: int = 32

    def __str__(self) -> str:
        return f"i{self.width}"


@dataclass(frozen=True, eq=False)
class FloatType(Type):
    """Floating-point type ``f16`` / ``f32`` / ``f64``."""

    width: int = 32

    def __str__(self) -> str:
        return f"f{self.width}"

    @property
    def np_dtype(self) -> np.dtype:
        return np.dtype({16: np.float16, 32: np.float32, 64: np.float64}[self.width])


@dataclass(frozen=True, eq=False)
class MemRefType(Type):
    """A ranked memref: shape, element type and optional memory space.

    ``memory_space`` 0 is global memory; 3 marks GPU shared (workgroup)
    memory, matching the convention of the MLIR ``gpu`` dialect examples.
    """

    shape: tuple
    element_type: Type = None  # type: ignore[assignment]
    memory_space: int = 0

    def __post_init__(self):
        object.__setattr__(self, "shape", tuple(self.shape))
        if self.element_type is None:
            object.__setattr__(self, "element_type", FloatType(32))

    def __str__(self) -> str:
        dims = "x".join("?" if d is None else str(d) for d in self.shape)
        space = f", {self.memory_space}" if self.memory_space else ""
        return f"memref<{dims}x{self.element_type}{space}>"

    @property
    def num_elements(self) -> int:
        total = 1
        for d in self.shape:
            if d is None:
                raise ValueError("dynamic memref shapes have no static element count")
            total *= d
        return total


def make_shape(shape: Sequence[int]) -> tuple:
    return tuple(int(s) for s in shape)


F32 = FloatType(32)
F16 = FloatType(16)
I32 = IntType(32)
INDEX = IndexType()
