"""A small MLIR-style SSA IR used as the MLIR-integration substrate.

The paper integrates LEGO into MLIR through the Python bindings, emitting a
module that mixes ``arith``, ``memref``, ``scf`` and ``gpu`` dialect
operations.  This reproduction has no LLVM/MLIR build, so this package
provides the minimum honest equivalent:

* :mod:`repro.mlir.ir` — modules, functions, blocks, operations, SSA values
  and types, plus an :class:`~repro.mlir.ir.OpBuilder`;
* :mod:`repro.mlir.dialects` — constructors for the ``arith`` / ``memref`` /
  ``scf`` / ``gpu`` / ``func`` operations the transpose kernels need;
* :mod:`repro.mlir.printer` — the generic textual form;
* :mod:`repro.mlir.verifier` — structural/SSA checks;
* :mod:`repro.mlir.interp` — an interpreter that executes ``gpu.func``
  kernels over a launch grid on NumPy memrefs, recording memory traffic.

The op names, SSA structure and type syntax follow MLIR so that the emitted
modules read like the ones the paper's artifact produces.
"""

from .ir import Block, FuncOp, Module, OpBuilder, Operation, Value
from .types import F32, IndexType, IntType, MemRefType
from .printer import print_module
from .verifier import VerificationError, verify_module
from .interp import GpuLaunchResult, run_gpu_kernel

__all__ = [
    "Module",
    "FuncOp",
    "Block",
    "Operation",
    "Value",
    "OpBuilder",
    "F32",
    "IndexType",
    "IntType",
    "MemRefType",
    "print_module",
    "verify_module",
    "VerificationError",
    "run_gpu_kernel",
    "GpuLaunchResult",
]
