"""Mini-Triton: a NumPy-backed interpreter for the ``tl.*`` kernel subset.

The substitution for the Triton compiler + GPU in this reproduction
(documented in DESIGN.md): generated kernels are ordinary Triton-syntax
source; :func:`compile_kernel` loads them, :func:`launch` executes them
program-by-program, and the recorded :class:`KernelTrace` feeds the analytic
device model in :mod:`repro.gpusim`.
"""

from . import language
from .language import DeviceBuffer, KernelTrace, PointerArray
from .runtime import TritonJitShim, compile_kernel, from_device, launch, to_device

# conventional alias so application code can write ``from repro.minitriton import tl``
tl = language

__all__ = [
    "language",
    "tl",
    "DeviceBuffer",
    "KernelTrace",
    "PointerArray",
    "TritonJitShim",
    "compile_kernel",
    "from_device",
    "launch",
    "to_device",
]
