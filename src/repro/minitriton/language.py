"""The ``tl.*`` language subset used by the paper's Triton benchmarks.

This module is imported as ``tl`` inside generated kernels.  It implements,
on top of NumPy, exactly the operations the evaluation kernels use:

``program_id``, ``num_programs``, ``arange``, ``zeros``, ``full``, ``load``,
``store``, ``dot``, ``cdiv``, ``sum``, ``max``, ``exp``, ``log``, ``sqrt``,
``rsqrt``, ``where``, ``maximum``, ``minimum``, ``abs`` and the dtype markers
``float16``/``float32``/``int32`` plus ``constexpr``.

Semantics follow Triton's block-program model: a kernel instance ("program")
operates on whole blocks (NumPy arrays); the launcher in
:mod:`repro.minitriton.runtime` runs one Python call per program id.  Every
``load``/``store``/``dot`` optionally records volume and coalescing
information into the active :class:`KernelTrace`, which feeds the analytic
performance model.
"""

from __future__ import annotations

import math as _math
from dataclasses import dataclass, field

import numpy as np

__all__ = [
    "constexpr",
    "float16",
    "float32",
    "int32",
    "int64",
    "KernelTrace",
    "DeviceBuffer",
    "PointerArray",
    "program_id",
    "num_programs",
    "arange",
    "zeros",
    "full",
    "load",
    "store",
    "dot",
    "cdiv",
    "sum",
    "max",
    "min",
    "exp",
    "log",
    "sqrt",
    "rsqrt",
    "abs",
    "where",
    "maximum",
    "minimum",
]


# ---------------------------------------------------------------------------
# dtypes and tensors
# ---------------------------------------------------------------------------


class constexpr:  # noqa: N801 - Triton spelling
    """Marker used in kernel signatures (``BM: tl.constexpr``); no behaviour."""


class _DType:
    def __init__(self, name: str, np_dtype):
        self.name = name
        self.np_dtype = np.dtype(np_dtype)

    def __repr__(self) -> str:
        return f"tl.{self.name}"


float16 = _DType("float16", np.float16)
float32 = _DType("float32", np.float32)
int32 = _DType("int32", np.int32)
int64 = _DType("int64", np.int64)


def _np_dtype(dtype) -> np.dtype:
    if isinstance(dtype, _DType):
        return dtype.np_dtype
    return np.dtype(dtype)


class TlTensor(np.ndarray):
    """A NumPy array with Triton's ``.to(dtype)`` conversion method."""

    def to(self, dtype) -> "TlTensor":
        return np.asarray(self).astype(_np_dtype(dtype)).view(TlTensor)


def _as_tensor(values) -> TlTensor:
    return np.asarray(values).view(TlTensor)


# ---------------------------------------------------------------------------
# execution state (set by the launcher) and tracing
# ---------------------------------------------------------------------------


@dataclass
class KernelTrace:
    """Memory-traffic and arithmetic counters accumulated across programs."""

    load_elements: float = 0.0
    store_elements: float = 0.0
    load_bytes: float = 0.0
    store_bytes: float = 0.0
    load_transactions: float = 0.0
    store_transactions: float = 0.0
    flops: float = 0.0
    tensor_core_flops: float = 0.0
    programs: int = 0
    #: DRAM sector granularity (bytes) the transaction counters were
    #: recorded at — the trace->cost adapter charges moved bytes at the same
    #: size, so recording and costing can never disagree
    sector_bytes: int = 32
    #: multiplier applied when only a sample of programs was executed
    scale: float = 1.0
    #: the launch executed only a sample of the grid, so device-buffer
    #: contents are partial.  ``scaled()`` folds ``scale`` back into the
    #: counters (resetting it to 1.0), so this flag — not the scale — is the
    #: durable record that results must never be numerically compared; the
    #: differential runner (:mod:`repro.check`) rejects traces carrying it.
    sampled: bool = False
    extras: dict = field(default_factory=dict)

    def scaled(self) -> "KernelTrace":
        out = KernelTrace(
            load_elements=self.load_elements * self.scale,
            store_elements=self.store_elements * self.scale,
            load_bytes=self.load_bytes * self.scale,
            store_bytes=self.store_bytes * self.scale,
            load_transactions=self.load_transactions * self.scale,
            store_transactions=self.store_transactions * self.scale,
            flops=self.flops * self.scale,
            tensor_core_flops=self.tensor_core_flops * self.scale,
            programs=int(self.programs * self.scale),
            sector_bytes=self.sector_bytes,
            scale=1.0,
            sampled=self.sampled,
        )
        out.extras = dict(self.extras)
        return out

    @property
    def dram_bytes(self) -> float:
        return self.load_bytes + self.store_bytes


class _State:
    """Per-launch execution state (program ids, grid shape, active trace)."""

    def __init__(self):
        self.program_ids: tuple[int, int, int] = (0, 0, 0)
        self.grid: tuple[int, int, int] = (1, 1, 1)
        self.trace: KernelTrace | None = None
        #: DRAM sector granularity transactions are counted at; the launcher
        #: sets it from the target :class:`~repro.gpusim.DeviceSpec`
        self.sector_bytes: int = 32


_state = _State()


def _get_state() -> _State:
    return _state


# ---------------------------------------------------------------------------
# pointers and buffers
# ---------------------------------------------------------------------------


class DeviceBuffer:
    """A flat "device" allocation; kernel arguments of pointer type."""

    def __init__(self, array: np.ndarray, name: str = "buf"):
        array = np.asarray(array)
        self._shape = array.shape
        self.data = np.ascontiguousarray(array).reshape(-1)
        self.name = name

    @property
    def dtype(self) -> np.dtype:
        return self.data.dtype

    @property
    def element_bytes(self) -> int:
        return int(self.data.dtype.itemsize)

    def to_numpy(self, shape=None) -> np.ndarray:
        shape = shape if shape is not None else self._shape
        return self.data.reshape(shape).copy()

    def __add__(self, offsets) -> "PointerArray":
        return PointerArray(self, np.asarray(offsets))

    __radd__ = __add__

    def __repr__(self) -> str:
        return f"DeviceBuffer({self.name}, n={self.data.size}, dtype={self.data.dtype})"


class PointerArray:
    """A buffer plus an array of element offsets (the result of ``ptr + offs``)."""

    def __init__(self, buffer: DeviceBuffer, offsets: np.ndarray):
        self.buffer = buffer
        self.offsets = np.asarray(offsets, dtype=np.int64)

    def __add__(self, more) -> "PointerArray":
        return PointerArray(self.buffer, self.offsets + np.asarray(more))

    __radd__ = __add__

    def __repr__(self) -> str:
        return f"PointerArray({self.buffer.name}, shape={self.offsets.shape})"


# ---------------------------------------------------------------------------
# program / grid queries
# ---------------------------------------------------------------------------


def program_id(axis: int) -> int:
    """Index of the current program along ``axis`` of the launch grid."""
    return _state.program_ids[axis]


def num_programs(axis: int) -> int:
    """Number of programs along ``axis`` of the launch grid."""
    return _state.grid[axis]


# ---------------------------------------------------------------------------
# block constructors
# ---------------------------------------------------------------------------


def arange(start: int, end: int) -> TlTensor:
    """A 1-D block of consecutive integers ``[start, end)`` (like ``tl.arange``)."""
    return _as_tensor(np.arange(int(start), int(end), dtype=np.int64))


def zeros(shape, dtype=float32) -> TlTensor:
    return _as_tensor(np.zeros(tuple(int(s) for s in shape), dtype=_np_dtype(dtype)))


def full(shape, value, dtype=float32) -> TlTensor:
    return _as_tensor(np.full(tuple(int(s) for s in shape), value, dtype=_np_dtype(dtype)))


# ---------------------------------------------------------------------------
# memory operations (traced)
# ---------------------------------------------------------------------------


def _record_access(offsets: np.ndarray, element_bytes: int, is_store: bool) -> None:
    trace = _state.trace
    if trace is None:
        return
    count = float(offsets.size)
    byte_addresses = offsets.reshape(-1) * element_bytes
    sectors = np.unique(byte_addresses // _state.sector_bytes)
    transactions = float(sectors.size)
    if is_store:
        trace.store_elements += count
        trace.store_bytes += count * element_bytes
        trace.store_transactions += transactions
    else:
        trace.load_elements += count
        trace.load_bytes += count * element_bytes
        trace.load_transactions += transactions


def load(pointer: PointerArray, mask=None, other=0.0) -> TlTensor:
    """Gather from a pointer block, honouring the optional mask."""
    if not isinstance(pointer, PointerArray):
        raise TypeError("tl.load expects a pointer expression (buffer + offsets)")
    offsets = pointer.offsets
    data = pointer.buffer.data
    if mask is None:
        if offsets.size and (offsets.min() < 0 or offsets.max() >= data.size):
            raise IndexError(
                f"out-of-bounds unmasked load on {pointer.buffer.name}: "
                f"range [{offsets.min()}, {offsets.max()}] vs size {data.size}"
            )
        values = data[offsets]
        _record_access(offsets, pointer.buffer.element_bytes, is_store=False)
        return _as_tensor(values)
    mask = np.broadcast_to(np.asarray(mask, dtype=bool), offsets.shape)
    safe_offsets = np.where(mask, offsets, 0)
    if safe_offsets.size and (safe_offsets.min() < 0 or safe_offsets.max() >= data.size):
        raise IndexError(f"masked load still out of bounds on {pointer.buffer.name}")
    values = np.where(mask, data[safe_offsets], other)
    _record_access(offsets[mask], pointer.buffer.element_bytes, is_store=False)
    return _as_tensor(values)


def store(pointer: PointerArray, value, mask=None) -> None:
    """Scatter a block to memory, honouring the optional mask."""
    if not isinstance(pointer, PointerArray):
        raise TypeError("tl.store expects a pointer expression (buffer + offsets)")
    offsets = pointer.offsets
    data = pointer.buffer.data
    value = np.broadcast_to(np.asarray(value), offsets.shape)
    if mask is None:
        if offsets.size and (offsets.min() < 0 or offsets.max() >= data.size):
            raise IndexError(
                f"out-of-bounds unmasked store on {pointer.buffer.name}: "
                f"range [{offsets.min()}, {offsets.max()}] vs size {data.size}"
            )
        data[offsets] = value.astype(data.dtype, copy=False)
        _record_access(offsets, pointer.buffer.element_bytes, is_store=True)
        return
    mask = np.broadcast_to(np.asarray(mask, dtype=bool), offsets.shape)
    flat_offsets = offsets[mask]
    if flat_offsets.size and (flat_offsets.min() < 0 or flat_offsets.max() >= data.size):
        raise IndexError(f"masked store still out of bounds on {pointer.buffer.name}")
    data[flat_offsets] = value[mask].astype(data.dtype, copy=False)
    _record_access(flat_offsets, pointer.buffer.element_bytes, is_store=True)


# ---------------------------------------------------------------------------
# arithmetic
# ---------------------------------------------------------------------------


def dot(a, b, acc=None) -> TlTensor:
    """Block matrix multiply with float32 accumulation (tensor-core ``tl.dot``)."""
    a = np.asarray(a)
    b = np.asarray(b)
    result = np.matmul(a.astype(np.float32), b.astype(np.float32))
    if acc is not None:
        result = result + np.asarray(acc, dtype=np.float32)
    trace = _state.trace
    if trace is not None:
        m, k = a.shape[-2], a.shape[-1]
        n = b.shape[-1]
        flops = 2.0 * m * n * k
        trace.flops += flops
        if a.dtype == np.float16 or b.dtype == np.float16:
            trace.tensor_core_flops += flops
    return _as_tensor(result)


def cdiv(a: int, b: int) -> int:
    """Ceiling division."""
    return -(-int(a) // int(b))


def _count_flops(array, per_element: float = 1.0) -> None:
    trace = _state.trace
    if trace is not None:
        trace.flops += float(np.asarray(array).size) * per_element


def sum(x, axis=None):  # noqa: A001 - Triton spelling
    _count_flops(x)
    return _as_tensor(np.sum(np.asarray(x, dtype=np.float32), axis=axis))


def max(x, axis=None):  # noqa: A001 - Triton spelling
    _count_flops(x)
    return _as_tensor(np.max(np.asarray(x), axis=axis))


def min(x, axis=None):  # noqa: A001 - Triton spelling
    _count_flops(x)
    return _as_tensor(np.min(np.asarray(x), axis=axis))


def exp(x):
    _count_flops(x)
    return _as_tensor(np.exp(np.asarray(x, dtype=np.float32)))


def log(x):
    _count_flops(x)
    return _as_tensor(np.log(np.asarray(x, dtype=np.float32)))


def sqrt(x):
    _count_flops(x)
    return _as_tensor(np.sqrt(np.asarray(x, dtype=np.float32)))


def rsqrt(x):
    _count_flops(x)
    return _as_tensor(1.0 / np.sqrt(np.asarray(x, dtype=np.float32)))


def abs(x):  # noqa: A001 - Triton spelling
    _count_flops(x)
    return _as_tensor(np.abs(np.asarray(x)))


def where(cond, a, b):
    _count_flops(cond)
    return _as_tensor(np.where(np.asarray(cond), a, b))


def maximum(a, b):
    _count_flops(a)
    return _as_tensor(np.maximum(np.asarray(a), np.asarray(b)))


def minimum(a, b):
    _count_flops(a)
    return _as_tensor(np.minimum(np.asarray(a), np.asarray(b)))
