"""Needleman-Wunsch (Rodinia) with an anti-diagonal shared-memory layout.

The Rodinia NW kernels keep a ``(b+1) x (b+1)`` score buffer in shared
memory and update the cells of each anti-diagonal in parallel.  With the
original row-major buffer the threads of a wave access words that are
``b`` elements apart, which serialises into multi-way bank conflicts; the
paper's optimisation re-lays the buffer in anti-diagonal order (Figure 7 /
Equation 2) so that a wave's cells are contiguous, and reports 1.4x-2.1x
end-to-end speedups (Figure 12a).

This module reproduces both sides:

* :func:`nw_reference` — the sequential dynamic program (ground truth);
* :func:`run_nw_blocked` — the blocked kernel on the mini-CUDA substrate,
  parameterised by the shared-buffer layout (``None`` = row-major, or the
  LEGO anti-diagonal layout from :func:`antidiagonal_buffer_layout`);
* :func:`generate_nw_wrapper` — the CUDA accessor struct the paper injects
  into the original kernel (two-line change);
* :func:`nw_performance` — analytic time estimate from the measured bank
  conflicts and traffic.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from ..codegen import generate_accessor_wrapper, prove_guard_redundant
from ..core import GroupBy, RegP, GenP, antidiagonal
from ..gpusim import A100_80GB, DeviceSpec, estimate_time
from ..minicuda import CudaTrace, GlobalArray, launch, trace_to_cost
from ..symbolic import BoolAnd, SymbolicEnv, as_expr

__all__ = [
    "NwConfig",
    "antidiagonal_buffer_layout",
    "skewed_buffer_layout",
    "nw_buffer_layout",
    "NW_BUFFER_LAYOUTS",
    "nw_reference",
    "nw_check_reference",
    "nw_check_case",
    "nw_perf_case",
    "nw_wave_span",
    "run_nw_blocked",
    "generate_nw_wrapper",
    "nw_performance",
    "nw_speedup",
    "app_spec",
]


@dataclass(frozen=True)
class NwConfig:
    """One NW problem: an ``n x n`` score matrix processed in ``block`` tiles."""

    n: int
    block: int = 16
    penalty: int = 10

    def __post_init__(self):
        if self.n % self.block != 0:
            raise ValueError(f"sequence length {self.n} must be a multiple of the block {self.block}")

    @property
    def num_blocks(self) -> int:
        return self.n // self.block


def antidiagonal_buffer_layout(block: int) -> GroupBy:
    """The paper's Equation 2 layout for the ``(b+1) x (b+1)`` shared buffer."""
    return GroupBy([block + 1, block + 1]).OrderBy(antidiagonal(block + 1))


def skewed_buffer_layout(block: int, skew: int) -> GroupBy:
    """A row-cyclic skew of the ``(b+1) x (b+1)`` buffer: ``(i, j) -> (i, (i*skew + j) % w)``.

    A skew of 1 also removes the wavefront's bank conflicts (the cells of an
    anti-diagonal land a full row width apart, which is odd and therefore
    conflict-free across 32 banks); larger skews are progressively worse.
    These populate the autotuner's layout axis alongside the paper's
    anti-diagonal layout.
    """
    width = block + 1

    def skewed(i, j):
        return i * width + (i * skew + j) % width

    def skewed_inv(flat):
        i = flat // width
        j = (flat % width - i * skew) % width
        return (i, j)

    perm = GenP([width, width], skewed, skewed_inv, name=f"skew{skew}_{width}")
    return GroupBy([width, width]).OrderBy(perm)


#: the shared-buffer layout axis the autotuner sweeps (paper's choice first)
NW_BUFFER_LAYOUTS = ("antidiagonal", "skew1", "skew2", "row", "col")


def nw_buffer_layout(block: int, name: str) -> GroupBy | None:
    """Resolve one value of the layout axis to a buffer layout (``None`` = row-major)."""
    width = block + 1
    if name == "row":
        return None
    if name == "col":
        return GroupBy([width, width]).OrderBy(
            RegP([width, width], [2, 1])
        )
    if name == "antidiagonal":
        return antidiagonal_buffer_layout(block)
    if name.startswith("skew"):
        return skewed_buffer_layout(block, int(name[len("skew"):]))
    raise ValueError(f"unknown NW buffer layout {name!r}; expected one of {NW_BUFFER_LAYOUTS}")


def nw_reference(reference: np.ndarray, penalty: int) -> np.ndarray:
    """Sequential Needleman-Wunsch dynamic program.

    ``reference[i, j]`` is the substitution score of aligning item ``i`` of
    the first sequence with item ``j`` of the second; gaps cost ``penalty``.
    Returns the full ``(n+1) x (n+1)`` score matrix (row/column 0 hold the
    gap-only prefix scores, as in Rodinia).
    """
    n = reference.shape[0]
    score = np.zeros((n + 1, n + 1), dtype=np.int32)
    score[0, :] = -penalty * np.arange(n + 1)
    score[:, 0] = -penalty * np.arange(n + 1)
    for i in range(1, n + 1):
        for j in range(1, n + 1):
            score[i, j] = max(
                score[i - 1, j - 1] + reference[i - 1, j - 1],
                score[i, j - 1] - penalty,
                score[i - 1, j] - penalty,
            )
    return score


def nw_check_reference(config, inputs) -> np.ndarray:
    """Ground truth for the differential check: the sequential dynamic program."""
    return nw_reference(inputs["reference"], config.get("penalty", 10))


def nw_check_case(config, rng):
    """A small full-wavefront NW problem under the configured buffer layout.

    The score matrix is integer, so the check is exact: any layout that is
    not a bijection of the shared buffer — or any staging bug — corrupts
    cells of the dynamic program outright rather than perturbing them.
    Executes through :func:`run_nw_blocked` for every layout value,
    including the ones whose configuration generates no accessor wrapper
    (row/col/affine layouts patch the original kernel).
    """
    from .registry import CheckCase

    block = config.get("block", 16)
    layout_name = config.get("layout", "antidiagonal")
    cfg = NwConfig(n=2 * block, block=block)
    reference = rng.integers(-4, 5, size=(cfg.n, cfg.n)).astype(np.int32)
    layout = nw_buffer_layout(block, layout_name)

    def execute(kernel, device=None):
        return run_nw_blocked(reference, cfg, layout=layout, device=device)

    return CheckCase(
        config={"layout": layout_name, "block": block, "n": cfg.n, "penalty": cfg.penalty},
        inputs={"reference": reference},
        execute=execute,
    )


def nw_perf_case(config, rng):
    """The measured-profiling case: the check wavefront plus extrapolation.

    The bank-conflict profile of the shared score buffer — the quantity the
    layout axis changes — is a per-block property, so the small check
    problem measures it exactly.  Extensive traffic scales by the block
    count; the full-size run launches one kernel per anti-diagonal wave,
    which is where NW's launch overhead (and the benefit of fewer, larger
    blocks) comes from.  The score matrix is integer, hence ``int32``.
    """
    from .registry import PerfCase

    case = nw_check_case(config, rng)
    if case is None:
        return None
    block = case.config["block"]
    target_n = config.get("n", 4096)
    target_blocks = (target_n // block) ** 2
    case_blocks = (case.config["n"] // block) ** 2
    return PerfCase(
        config=case.config,
        inputs=case.inputs,
        execute=case.execute,
        scale=target_blocks / case_blocks,
        launches=2 * (target_n // block) - 1,
        target_config={"layout": case.config["layout"], "block": block, "n": target_n},
        dtype="int32",
    )


def nw_wave_span(wave: int, block_count: int) -> tuple[int, int]:
    """Inclusive ``blockIdx.x`` range of the live blocks on anti-diagonal ``wave``.

    Wave ``w`` holds the blocks with ``bx + by == w``, so ``bx`` runs over
    ``[max(0, w - bc + 1), min(w, bc - 1)]`` — exactly ``blocks_on_wave``
    values.  This is the span the guard-eliminated launch enumerates
    directly instead of masking a full ``bc``-wide grid.
    """
    return max(0, wave - block_count + 1), min(wave, block_count - 1)


@functools.lru_cache(maxsize=None)
def _prove_wave_guard(wave: int, block_count: int) -> bool:
    """Prove the wavefront guard redundant for the offset compact launch.

    Builds the launch symbolically — ``bx = bxw + lo`` for a grid index
    ``bxw`` over the wave's span — and asks the stride-aware prover to
    discharge the kernel's guard predicate
    ``0 <= by < bc and 0 <= bx < bc`` (with ``by = wave - bx``) for every
    grid point.  A ``True`` verdict licenses launching the unguarded kernel.
    """
    lo, hi = nw_wave_span(wave, block_count)
    count = hi - lo + 1
    if count < 1:
        return False
    env = SymbolicEnv()
    bxw = env.declare_index("bxw", count)
    bx = bxw + lo
    by = as_expr(wave) - bx
    predicate = BoolAnd(by.ge(0), by.lt(block_count), bx.ge(0), bx.lt(block_count))
    return prove_guard_redundant(predicate, env, kernel="nw_wave")


def _nw_block_kernel(ctx, score: GlobalArray, reference: GlobalArray, config: NwConfig,
                     wave: int, layout, block_count: int, bx_offset: int = 0,
                     guarded: bool = True):
    """Process one block on the current wavefront (one thread per column)."""
    b = config.block
    # blocks on wave w: block_x + block_y == w
    bx = ctx.blockIdx.x + bx_offset
    by = wave - bx
    if guarded:
        ctx = ctx.where_blocks((by >= 0) & (by < block_count) & (bx < block_count))
        if ctx is None:
            return
    bx = ctx.blockIdx.x + bx_offset
    by = wave - bx
    base_i = by * b
    base_j = bx * b

    buff = ctx.shared_array((b + 1, b + 1), dtype=np.int32, layout=layout, name="buff")
    tx = ctx.tx  # one thread per column of the block

    # stage the block's boundary scores: buff[0, j] mirrors score[base_i, base_j + j]
    # and buff[i, 0] mirrors score[base_i + i, base_j]
    buff.store(score.load(ctx, base_i, base_j + tx + 1), 0, tx + 1)
    buff.store(score.load(ctx, base_i + tx + 1, base_j), tx + 1, 0)
    buff.store(score.load(ctx, base_i, base_j), 0, 0)
    ctx.syncthreads()

    # forward sweep over the 2b-1 anti-diagonals
    for m in range(2 * b - 1):
        lanes = np.arange(max(0, m - b + 1), min(m, b - 1) + 1)
        i = lanes + 1
        j = m - lanes + 1
        up_left = buff.load(i - 1, j - 1)
        left = buff.load(i, j - 1)
        up = buff.load(i - 1, j)
        ref_vals = reference.load(ctx, base_i + i - 1, base_j + j - 1)
        value = np.maximum(up_left + ref_vals, np.maximum(left - config.penalty, up - config.penalty))
        buff.store(value, i, j)
        ctx.count_flops(3 * lanes.size)
        ctx.syncthreads()

    # Write the block's interior back to the score matrix.  The write-back is
    # a streaming store that is not on the wavefront's dependency chain, so it
    # is read out of the logical view directly; only its global-memory store
    # traffic is charged (keeping the shared-memory conflict profile focused
    # on the latency-bound diagonal phase the layout optimisation targets).
    interior = buff.to_numpy()[..., 1:, 1:]
    flat_interior = interior.reshape(interior.shape[:-2] + (-1,))
    rows_grid, cols_grid = np.meshgrid(np.arange(1, b + 1), np.arange(1, b + 1), indexing="ij")
    score.store(ctx, flat_interior, base_i + rows_grid.reshape(-1), base_j + cols_grid.reshape(-1))


def run_nw_blocked(
    reference: np.ndarray,
    config: NwConfig,
    layout: GroupBy | None = None,
    device: DeviceSpec | None = None,
    eliminate_guards: bool = True,
) -> tuple[np.ndarray, CudaTrace]:
    """Run the blocked NW kernel over all wavefronts on the mini-CUDA substrate.

    Returns the ``(n+1) x (n+1)`` score matrix and the merged launch trace
    (which carries the shared-memory conflict profile that distinguishes the
    two layouts).  ``device`` sets the warp width / sector granularity the
    trace records at.

    With ``eliminate_guards`` (the default) each wave launches only its live
    span of blocks — grid ``(blocks_on_wave, 1)`` offset to the wave's first
    ``blockIdx.x`` — and the kernel's wavefront mask is dropped, provided the
    range prover discharges the guard predicate for that launch shape
    (:func:`_prove_wave_guard`).  Unproven shapes keep the full guarded grid.
    """
    n, b = config.n, config.block
    score = np.zeros((n + 1, n + 1), dtype=np.int32)
    score[0, :] = -config.penalty * np.arange(n + 1)
    score[:, 0] = -config.penalty * np.arange(n + 1)
    score_buf = GlobalArray(score, name="score")
    ref_buf = GlobalArray(reference.astype(np.int32), name="reference")

    merged = CudaTrace()
    launches = 0
    block_count = config.num_blocks
    for wave in range(2 * block_count - 1):
        blocks_on_wave = min(wave + 1, block_count, 2 * block_count - 1 - wave)
        lo, hi = nw_wave_span(wave, block_count)
        if eliminate_guards and _prove_wave_guard(wave, block_count):
            grid, bx_offset, guarded = (hi - lo + 1, 1), lo, False
        else:
            grid, bx_offset, guarded = (block_count, 1), 0, True
        trace = launch(
            _nw_block_kernel,
            grid=grid,
            block=(b, 1),
            args=(score_buf, ref_buf, config, wave, layout, block_count, bx_offset, guarded),
            device=device,
        )
        merged.sector_bytes = trace.sector_bytes
        launches += 1
        merged.load_bytes += trace.load_bytes
        merged.store_bytes += trace.store_bytes
        merged.load_transactions += trace.load_transactions
        merged.store_transactions += trace.store_transactions
        merged.smem_load_bytes += trace.smem_load_bytes
        merged.smem_store_bytes += trace.smem_store_bytes
        merged.smem_profile = merged.smem_profile.merge(trace.smem_profile)
        merged.flops += trace.flops
        merged.blocks += blocks_on_wave
        # every wave launches its full grid; without accumulating the
        # executed count the merged trace would misreport itself as sampled
        merged.executed_blocks += min(trace.executed_blocks, blocks_on_wave)
        merged.threads_per_block = trace.threads_per_block
        merged.smem_per_block = max(merged.smem_per_block, trace.smem_per_block)
    merged.extras = {"launches": launches}
    return score_buf.to_numpy(), merged


def generate_nw_wrapper(block: int = 16) -> str:
    """The CUDA accessor struct redirecting ``buff`` through the layout.

    This is the paper's integration style for NW: the original Rodinia kernel
    keeps its logical 2-D accesses; only the buffer declaration and this
    wrapper are added (a two-line change).
    """
    return generate_accessor_wrapper("buff", antidiagonal_buffer_layout(block), scalar_type="int")


#: latency constants of the per-cell dependency chain (cycles) and the
#: back-to-back kernel launch overhead of the Rodinia host loop; see
#: :func:`nw_performance` for the model they parameterise.
_NW_DEPENDENCY_CYCLES = 100.0
_NW_SMEM_PASS_CYCLES = 8.0
_NW_SMEM_ACCESSES_PER_STEP = 5.0
_NW_LAUNCH_OVERHEAD_US = 2.0


def nw_performance(
    trace: CudaTrace,
    traced_config: NwConfig,
    target_config: NwConfig | None = None,
    device: DeviceSpec = A100_80GB,
) -> float:
    """Estimated end-to-end NW time from a measured trace.

    The NW inner loop is *latency bound*: the cells of consecutive
    anti-diagonals depend on each other, so every one of the ``2b - 1`` steps
    pays the dependency latency plus one shared-memory pass per conflict
    replay.  The wavefront over blocks is sequential (one kernel launch per
    wave, as in the Rodinia host loop), while the blocks inside a wave run
    concurrently, so

    ``time = waves * (launch overhead + block critical path + wave DRAM time)``

    The measured bank-conflict profile sets the number of shared-memory
    replays; the measured DRAM traffic (scaled to the target size) sets the
    per-wave memory time.  This is the mechanism behind Figure 12a: the
    anti-diagonal layout shortens the critical path, everything else is
    unchanged.
    """
    target = target_config or traced_config
    b = target.block
    waves = 2 * target.num_blocks - 1
    degree = trace.bank_conflict_factor

    steps = 2 * b - 1
    step_cycles = _NW_DEPENDENCY_CYCLES + _NW_SMEM_ACCESSES_PER_STEP * degree * _NW_SMEM_PASS_CYCLES
    block_critical_path = steps * step_cycles / (device.clock_ghz * 1e9)

    traced_blocks = traced_config.num_blocks * traced_config.num_blocks
    dram_bytes_per_block = trace.dram_bytes / max(1, traced_blocks)
    blocks_per_wave = max(1.0, target.num_blocks / 2.0)
    wave_dram_time = blocks_per_wave * dram_bytes_per_block / (device.dram_bandwidth_gbs * 1e9 * 0.7)

    # Once a wave holds more blocks than there are SMs, the blocks execute in
    # batches and the (conflict-dependent) critical path is paid per batch —
    # this is why the layout's benefit grows with the matrix size.
    batches = max(1.0, np.ceil(blocks_per_wave / device.num_sms))
    launch_overhead = _NW_LAUNCH_OVERHEAD_US * 1e-6
    return waves * (launch_overhead + batches * block_critical_path + wave_dram_time)


def nw_speedup(
    n: int,
    block: int = 16,
    penalty: int = 10,
    trace_n: int | None = None,
) -> dict[str, float]:
    """Row-major vs anti-diagonal NW: times, conflict factors and speedup.

    The conflict profile and per-block traffic are collected on a moderate
    traced problem (``trace_n``, default ``min(n, 256)``) — they are
    per-block quantities independent of the matrix size — and the time model
    is evaluated for the requested ``n``.
    """
    trace_n = trace_n or min(n, 256)
    traced_config = NwConfig(n=trace_n, block=block, penalty=penalty)
    target_config = NwConfig(n=n, block=block, penalty=penalty)
    rng = np.random.default_rng(0)
    reference = rng.integers(-4, 5, size=(trace_n, trace_n)).astype(np.int32)
    _, trace_row = run_nw_blocked(reference, traced_config, layout=None)
    _, trace_anti = run_nw_blocked(reference, traced_config, layout=antidiagonal_buffer_layout(block))
    time_row = nw_performance(trace_row, traced_config, target_config)
    time_anti = nw_performance(trace_anti, traced_config, target_config)
    return {
        "n": n,
        "time_row_major": time_row,
        "time_antidiagonal": time_anti,
        "speedup": time_row / time_anti,
        "conflict_factor_row_major": trace_row.bank_conflict_factor,
        "conflict_factor_antidiagonal": trace_anti.bank_conflict_factor,
    }


def app_spec():
    """The NW :class:`~repro.apps.registry.AppSpec` for the autotuner.

    The space crosses the shared-buffer layout (anti-diagonal, row-cyclic
    skews, row- and column-major) with the block size.  Evaluation traces a
    small problem on the mini-CUDA substrate — the bank-conflict profile is
    a per-block property — and extrapolates the latency model to the target
    size, exactly like :func:`nw_speedup`; the conflict factor rides along
    as a metric.  The paper's anti-diagonal layout is listed first so that
    other conflict-free candidates (skew 1) cannot win on an exact tie.
    """
    from ..tune.space import Choice, SearchSpace
    from .registry import AppSpec, register_app

    n = 4096
    space = SearchSpace(
        Choice("layout", NW_BUFFER_LAYOUTS),
        Choice("block", (16, 32, 8, 4)),
    )

    def evaluate(config, device=A100_80GB):
        block = config["block"]
        trace_n = 4 * block
        traced = NwConfig(n=trace_n, block=block)
        target = NwConfig(n=config.get("n", n), block=block)
        rng = np.random.default_rng(0)
        reference = rng.integers(-4, 5, size=(trace_n, trace_n)).astype(np.int32)
        layout = nw_buffer_layout(block, config["layout"])
        _, trace = run_nw_blocked(reference, traced, layout=layout, device=device)
        return {
            "time_seconds": nw_performance(trace, traced, target, device=device),
            "conflict_factor": trace.bank_conflict_factor,
        }

    def generate(config):
        layout = nw_buffer_layout(config["block"], config["layout"])
        if layout is None or not any(
            isinstance(p, GenP) for ob in layout.order_bys for p in ob.perms
        ):
            return None  # affine layouts patch the original kernel without a wrapper
        from ..codegen import GeneratedKernel

        source = generate_accessor_wrapper("buff", layout, scalar_type="int")
        return GeneratedKernel(name=f"nw_buff_{config['layout']}", source=source, backend="cuda")

    return register_app(AppSpec(
        name="nw",
        backend="cuda",
        space=space,
        evaluate=evaluate,
        generate=generate,
        generate_params=("block", "layout"),
        reference=nw_check_reference,
        check_case=nw_check_case,
        perf_case=nw_perf_case,
        paper_config={"layout": "antidiagonal", "block": 16},
        description="NW shared-buffer layout sweep (Figure 12a)",
    ))
