"""The paper's benchmark applications, built on the LEGO stack.

Each module pairs a LEGO layout specification with a kernel template (Triton
or CUDA) or a mini-CUDA kernel, and exposes three things:

* ``generate_*`` — produce the kernel source from layouts (code generation);
* ``run_*`` / ``*_reference`` — execute the kernel on the corresponding
  substrate and check it against a NumPy reference;
* ``*_performance`` — estimate wall-clock time on the analytic A100 model,
  for the layout variants the paper's evaluation compares.

Modules
-------
``matmul``        FP16 matrix multiplication, four transpose variants (Fig. 1/10/11)
``grouped_gemm``  grouped GEMM over a batch of equally-sized groups (Fig. 11)
``softmax``       row-wise fused softmax (Fig. 11)
``layernorm``     LayerNorm forward and backward (Fig. 11)
``nw``            Needleman-Wunsch with anti-diagonal shared-memory layout (Fig. 12a)
``lud``           LU decomposition with thread-coarsening layouts (Fig. 12b, 13a)
``stencil``       3-D star/cube stencils, array vs. brick layout (Fig. 12c, 13b)
``transpose``     2-D transpose through the MLIR backend (Table V)

Every module also exposes an ``app_spec()`` factory registering a uniform
:class:`~repro.apps.registry.AppSpec` (search space + generate + evaluate)
with the app registry, which is what the layout autotuner in
:mod:`repro.tune` sweeps (``repro.apps.registry.get_app("lud")``).
"""

from importlib import import_module

__all__ = [
    "matmul",
    "grouped_gemm",
    "softmax",
    "layernorm",
    "nw",
    "lud",
    "stencil",
    "transpose",
]


def __getattr__(name: str):
    """Load application modules on first use (keeps ``import repro`` light)."""
    if name in __all__:
        return import_module(f".{name}", __name__)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
