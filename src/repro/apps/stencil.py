"""3-D stencils: conventional row-major array layout vs. the brick layout.

The paper's final CUDA study (Figures 12c and 13b) compares a row-major
array with a *brick* data layout — small 3-D subdomains stored contiguously
(Zhou et al.) — for star-shaped (7/13/19/27-point) and cube-shaped
(27/125-point) stencils, reporting 3.4x-3.9x from the layout change alone.

In LEGO the brick layout is just the Table I (row "12c") expression::

    TileBy([N/B, N/B, N/B], [B, B, B]).OrderBy(Row(N/B, N/B, N/B), Row(B, B, B))

Functional correctness is checked by running the same mini-CUDA kernel over
a :class:`~repro.minicuda.GlobalArray` with either layout; the performance
model charges each layout for the DRAM traffic its neighbour accesses
actually generate (bricks keep a point's whole neighbourhood in a handful of
contiguous lines, the row-major array spreads it over ``2r + 1`` planes that
do not survive in cache at realistic grid sizes).
"""

from __future__ import annotations

import functools
from dataclasses import dataclass

import numpy as np

from ..codegen import prove_guard_redundant
from ..core import GroupBy, RegP, Row, TileBy
from ..gpusim import A100_80GB, DeviceSpec, KernelCost, estimate_time
from ..minicuda import GlobalArray, launch
from ..symbolic import BoolAnd, SymbolicEnv

__all__ = [
    "STENCILS",
    "StencilSpec",
    "brick_layout",
    "stencil_offsets",
    "stencil_reference",
    "stencil_check_reference",
    "stencil_check_case",
    "stencil_perf_case",
    "interior_block_span",
    "run_stencil",
    "stencil_cost",
    "stencil_performance",
    "stencil_speedup",
    "app_spec",
]


def stencil_check_reference(config, inputs) -> np.ndarray:
    """Ground truth: the NumPy stencil sweep over the logical grid."""
    by_name = {spec.name: spec for spec in STENCILS}
    return stencil_reference(inputs["grid"], by_name[config.get("stencil", "star-7pt")])


def stencil_check_case(config, rng):
    """A small full-grid stencil sweep under the configured data layout.

    The output must match the row-major reference *regardless* of the
    physical layout — that indifference is exactly what the brick layout's
    correctness claim is — so both layout values execute the same check.
    The grid is the smallest brick multiple that still has interior cells
    for the stencil's radius.
    """
    from .registry import CheckCase

    by_name = {spec.name: spec for spec in STENCILS}
    spec = by_name[config.get("stencil", "star-7pt")]
    brick = config.get("brick", 4)
    n = 2 * brick
    while n < 2 * spec.radius + 2:
        n += brick
    grid = rng.standard_normal((n, n, n)).astype(np.float32)
    layout_name = config.get("layout", "brick")
    layout = brick_layout(n, brick) if layout_name == "brick" else None

    def execute(kernel, device=None):
        return run_stencil(grid, spec, layout=layout, brick=brick, device=device)

    return CheckCase(
        config={"stencil": spec.name, "layout": layout_name, "brick": brick, "n": n},
        inputs={"grid": grid},
        execute=execute,
    )


def stencil_perf_case(config, rng):
    """The measured-profiling case: a multi-brick grid plus extrapolation.

    Historically the stencil had no perf case, so measured profiling fell
    back to the minimal check grid — too small to exercise more than one
    interior brick, which is why the widest (125-point) stencil could only
    be ranked sampled.  With the vectorized engine a grid of several bricks
    per side executes in milliseconds, so the case runs it *unsampled* and
    extrapolates by the ratio of interior cells (traffic and arithmetic are
    both per-interior-cell; the layout's per-transaction behaviour is what
    the measurement captures and survives scaling unchanged).
    """
    from .registry import PerfCase

    by_name = {spec.name: spec for spec in STENCILS}
    spec = by_name[config.get("stencil", "star-7pt")]
    brick = config.get("brick", 4)
    r = spec.radius
    n = brick
    while n < max(4 * brick, 2 * r + 2):
        n += brick
    grid = rng.standard_normal((n, n, n)).astype(np.float32)
    layout_name = config.get("layout", "brick")
    layout = brick_layout(n, brick) if layout_name == "brick" else None

    def execute(kernel, device=None):
        return run_stencil(grid, spec, layout=layout, brick=brick, device=device)

    target_n = config.get("n", 512)
    interior = (n - 2 * r) ** 3
    target_interior = (target_n - 2 * r) ** 3
    return PerfCase(
        config={"stencil": spec.name, "layout": layout_name, "brick": brick, "n": n},
        inputs={"grid": grid},
        execute=execute,
        scale=target_interior / interior,
        launches=1,
        target_config={"stencil": spec.name, "layout": layout_name, "brick": brick, "n": target_n},
        dtype="fp32",
    )


@dataclass(frozen=True)
class StencilSpec:
    """A stencil shape: ``star`` or ``cube`` with the given radius."""

    name: str
    shape: str  # "star" | "cube"
    radius: int

    @property
    def points(self) -> int:
        return len(stencil_offsets(self))


def stencil_offsets(spec: StencilSpec) -> list[tuple[int, int, int]]:
    """The (dz, dy, dx) neighbour offsets of a stencil."""
    offsets: list[tuple[int, int, int]] = []
    r = spec.radius
    if spec.shape == "star":
        offsets.append((0, 0, 0))
        for axis in range(3):
            for step in range(1, r + 1):
                for sign in (-1, 1):
                    delta = [0, 0, 0]
                    delta[axis] = sign * step
                    offsets.append(tuple(delta))
    elif spec.shape == "cube":
        for dz in range(-r, r + 1):
            for dy in range(-r, r + 1):
                for dx in range(-r, r + 1):
                    offsets.append((dz, dy, dx))
    else:
        raise ValueError(f"unknown stencil shape {spec.shape!r}")
    return offsets


#: The stencil suite of Figure 12c.
STENCILS = (
    StencilSpec("star-7pt", "star", 1),
    StencilSpec("star-13pt", "star", 2),
    StencilSpec("star-19pt", "star", 3),
    StencilSpec("star-27pt", "star", 4),
    StencilSpec("cube-27pt", "cube", 1),
    StencilSpec("cube-125pt", "cube", 2),
)


def brick_layout(n: int, brick: int) -> GroupBy:
    """The brick layout of Table I (row 12c) for an ``n^3`` grid.

    The logical view is the plain ``(n, n, n)`` grid the stencil kernel
    indexes with; physically, each ``brick^3`` subdomain is stored
    contiguously and the bricks themselves are ordered row-major — i.e. the
    strip-mined dimensions are permuted so that all three block coordinates
    come before the three intra-brick coordinates.
    """
    if n % brick != 0:
        raise ValueError(f"grid size {n} must be a multiple of the brick size {brick}")
    nb = n // brick
    return GroupBy([n, n, n]).OrderBy(
        RegP([nb, brick, nb, brick, nb, brick], [1, 3, 5, 2, 4, 6])
    )


def stencil_reference(grid: np.ndarray, spec: StencilSpec) -> np.ndarray:
    """NumPy reference: equal-weight sum over the stencil's neighbours.

    Boundary cells (within ``radius`` of a face) are left unchanged, matching
    the kernel's interior-only iteration.
    """
    n = grid.shape[0]
    r = spec.radius
    out = grid.astype(np.float32).copy()
    offsets = stencil_offsets(spec)
    weight = 1.0 / len(offsets)
    interior = np.zeros((n - 2 * r, n - 2 * r, n - 2 * r), dtype=np.float32)
    for dz, dy, dx in offsets:
        interior += grid[r + dz : n - r + dz, r + dy : n - r + dy, r + dx : n - r + dx]
    out[r : n - r, r : n - r, r : n - r] = interior * weight
    return out


def interior_block_span(n: int, brick: int, radius: int) -> tuple[int, int] | None:
    """Inclusive per-axis block range whose every thread is an interior cell.

    Block ``b`` covers cells ``[b*brick, (b+1)*brick)``, so all of its
    threads are interior along an axis exactly when
    ``b >= ceil(radius / brick)`` and ``(b+1)*brick <= n - radius``.
    Returns ``None`` when no fully interior block exists (tiny grids).
    """
    lo = -(-radius // brick)
    hi = (n - radius - brick) // brick
    if lo > hi:
        return None
    return lo, hi


@functools.lru_cache(maxsize=None)
def _prove_interior_span(n: int, brick: int, radius: int) -> bool:
    """Prove the interior mask redundant for blocks inside the span.

    Models one axis symbolically — block coordinate ``b`` over the span,
    thread coordinate ``t`` over the brick — and asks the range prover to
    discharge ``radius <= b*brick + t < n - radius``.  The grid and brick
    are cubic, so one axis proof covers all three.
    """
    span = interior_block_span(n, brick, radius)
    if span is None:
        return False
    env = SymbolicEnv()
    t = env.declare_index("t", brick)
    b = env.declare_range("b", span[0], span[1])
    i = b * brick + t
    predicate = BoolAnd(i.ge(radius), i.lt(n - radius))
    return prove_guard_redundant(predicate, env, kernel="stencil_interior")


def _stencil_update(ctx, src: GlobalArray, dst: GlobalArray, spec: StencilSpec,
                    ii, jj, kk, lanes: int):
    """Accumulate the stencil at ``(ii, jj, kk)`` and write the result back."""
    offsets = stencil_offsets(spec)
    weight = 1.0 / len(offsets)
    acc = np.zeros(np.shape(ii), dtype=np.float32)
    for dz, dy, dx in offsets:
        acc += src.load(ctx, ii + dz, jj + dy, kk + dx)
    ctx.count_flops(len(offsets) * lanes)
    dst.store(ctx, acc * weight, ii, jj, kk)


def _stencil_kernel(ctx, src: GlobalArray, dst: GlobalArray, n: int, spec: StencilSpec,
                    brick: int, interior_span: tuple[int, int] | None = None):
    """One thread block updates one ``brick^3`` subdomain (interior only).

    With ``interior_span`` (set by :func:`run_stencil` once the range prover
    has discharged the interior predicate) the blocks whose coordinates lie
    inside the span skip the per-thread interior mask and the
    ``compact_threads`` compression entirely; only boundary blocks keep the
    guarded path.
    """
    r = spec.radius
    bx, by, bz = ctx.blockIdx.x, ctx.blockIdx.y, ctx.blockIdx.z
    if interior_span is not None:
        blo, bhi = interior_span
        inside = (
            (bx >= blo) & (bx <= bhi)
            & (by >= blo) & (by <= bhi)
            & (bz >= blo) & (bz <= bhi)
        )
        ictx = ctx.where_blocks(inside)
        if ictx is not None:
            # proven in-bounds: every thread updates its cell unguarded
            ii = ictx.blockIdx.z * brick + ictx.tz
            jj = ictx.blockIdx.y * brick + ictx.ty
            kk = ictx.blockIdx.x * brick + ictx.tx
            _stencil_update(ictx, src, dst, spec, ii, jj, kk, ictx.num_threads)
        ctx = ctx.where_blocks(~np.asarray(inside, dtype=bool))
        if ctx is None:
            return
        bx, by, bz = ctx.blockIdx.x, ctx.blockIdx.y, ctx.blockIdx.z
    # per-thread coordinates inside the brick (block is brick x brick x brick)
    i = bz * brick + ctx.tz
    j = by * brick + ctx.ty
    k = bx * brick + ctx.tx
    interior = (i >= r) & (i < n - r) & (j >= r) & (j < n - r) & (k >= r) & (k < n - r)
    ctx = ctx.compact_threads(interior)
    if ctx is None:
        return
    ii, jj, kk = ctx.compact(i), ctx.compact(j), ctx.compact(k)
    _stencil_update(ctx, src, dst, spec, ii, jj, kk, ii.size)


def run_stencil(
    grid: np.ndarray,
    spec: StencilSpec,
    layout: GroupBy | None = None,
    brick: int = 4,
    device: DeviceSpec | None = None,
    eliminate_guards: bool = True,
):
    """Run the stencil kernel on the mini-CUDA substrate with the given layout.

    Returns ``(output grid, trace)``; the output matches
    :func:`stencil_reference` regardless of the layout — only the physical
    placement (and hence the traffic pattern) changes.  ``device`` sets the
    warp width / sector granularity the trace records at.

    With ``eliminate_guards`` (the default) the fully interior blocks —
    those in :func:`interior_block_span` along every axis — execute without
    the per-thread interior mask, provided the range prover discharges the
    interior predicate for this ``(n, brick, radius)`` shape; boundary
    blocks keep the guarded ``compact_threads`` path.
    """
    n = grid.shape[0]
    src = GlobalArray(grid.astype(np.float32), layout=layout, name="src")
    dst = GlobalArray(grid.astype(np.float32), layout=layout, name="dst")
    blocks = n // brick
    interior_span = None
    if eliminate_guards and _prove_interior_span(n, brick, spec.radius):
        interior_span = interior_block_span(n, brick, spec.radius)
    trace = launch(
        _stencil_kernel,
        grid=(blocks, blocks, blocks),
        block=(brick, brick, brick),
        args=(src, dst, n, spec, brick, interior_span),
        device=device,
    )
    return dst.to_numpy(), trace


def stencil_cost(
    spec: StencilSpec,
    n: int,
    layout: str = "array",
    brick: int = 8,
    *,
    brick_y: int | None = None,
    brick_z: int | None = None,
    coarsen: int = 1,
    vector: int = 1,
    unroll: int = 1,
) -> KernelCost:
    """The analytic :class:`~repro.gpusim.KernelCost` of one stencil sweep.

    Both layouts stream the grid roughly once per sweep — the ``2r + 1``
    planes of neighbours fit in the A100's 40 MB L2 at the evaluated grid
    sizes — so what differs is how much of each DRAM transaction is useful:

    * **brick** — every 32-byte sector a brick occupies is fully consumed by
      the block computing that brick, so the sweep runs near the streaming
      bandwidth limit (the Zhou et al. effect the paper reuses);
    * **array** — the row-major kernel's neighbour accesses in ``y``/``z``
      are strided and misaligned with respect to sectors and vector widths,
      wasting a large, stencil-size-insensitive fraction of every
      transaction, plus a small L2-miss term that grows with the number of
      distinct ``(dy, dz)`` planes the stencil touches.

    The keyword-only axes extend the paper's grid: ``brick_y``/``brick_z``
    make the brick anisotropic (``brick`` is the unit-stride x side — a
    short x side leaves part of every 32-byte sector unconsumed, so the
    default cubic brick of 8 floats keeps the historical efficiency
    exactly), ``coarsen`` folds several cells into one thread,
    ``vector``/``unroll`` are mild code-shape penalties.  At the defaults
    this reproduces the historical closed form bit for bit.
    """
    element = 4.0
    cells = float(n) ** 3
    offsets = stencil_offsets(spec)
    by = brick if brick_y is None else brick_y
    bz = brick if brick_z is None else brick_z
    volume = brick * by * bz
    if layout == "brick":
        read_elements = 1.0
        # fraction of each DRAM sector the brick's x-extent actually covers
        sector_fraction = min(1.0, brick * element / 32.0) ** 0.5
        efficiency = 0.88 * sector_fraction
    elif layout == "array":
        planes = len({(dy, dz) for dz, dy, _ in offsets})
        read_elements = 1.0 + 0.012 * (planes - 1)
        efficiency = 0.26
    else:
        raise ValueError(f"unknown stencil layout {layout!r}")
    efficiency *= {1: 1.0, 2: 0.998, 4: 0.995}.get(vector, 0.99)
    dram_bytes = cells * element * (read_elements + 1.0)
    # Arithmetic per cell is capped: the generated kernels reuse partial sums
    # along the unit-stride axis, and the paper's roofline (Figure 13b) places
    # every stencil on the memory roof, i.e. bandwidth- not compute-bound.
    flops_per_cell = float(min(len(offsets), 32))
    threads_per_block = float(volume // coarsen) if layout == "brick" else 256.0
    return KernelCost(
        name=f"stencil_{spec.name}_{layout}",
        flops=cells * flops_per_cell,
        dram_bytes=dram_bytes,
        dram_efficiency=efficiency,
        compute_efficiency=0.85 * {1: 1.0, 2: 1.0, 4: 0.99}.get(unroll, 0.98),
        blocks=cells / volume,
        threads_per_block=threads_per_block,
        threads=cells / coarsen,
    )


def stencil_performance(
    spec: StencilSpec,
    n: int,
    layout: str = "array",
    brick: int = 8,
    device: DeviceSpec = A100_80GB,
    **axes,
) -> float:
    """Estimated stencil sweep time (see :func:`stencil_cost` for the model)."""
    return estimate_time(stencil_cost(spec, n, layout, brick, **axes), device).total


def stencil_speedup(spec: StencilSpec, n: int = 512, brick: int = 8) -> dict[str, float]:
    """Array vs. brick layout for one stencil: times and speedup (Figure 12c)."""
    time_array = stencil_performance(spec, n, "array", brick)
    time_brick = stencil_performance(spec, n, "brick", brick)
    return {
        "stencil": spec.name,
        "points": spec.points,
        "n": n,
        "time_array": time_array,
        "time_brick": time_brick,
        "speedup": time_array / time_brick,
    }


def app_spec():
    """The stencil :class:`~repro.apps.registry.AppSpec` for the autotuner.

    The axes are the data layout (brick vs row-major array), the brick
    shape (anisotropic: x, y and z sides), the stencil shape and the
    code-shape knobs (coarsening, vector width, unrolling); the brick
    layout wins for every shape, which is Figure 12c's result.  The
    constraint keeps the thread block between a warp and the CUDA limit.
    """
    from ..gpusim import cost_features
    from ..tune.space import Choice, SearchSpace
    from .registry import AppSpec, register_app

    n = 512
    by_name = {spec.name: spec for spec in STENCILS}

    def valid(c) -> bool:
        volume = c["brick"] * c["brick_y"] * c["brick_z"]
        return 32 <= volume <= 4096 and volume % c["coarsen"] == 0

    space = SearchSpace(
        Choice("layout", ("brick", "array")),
        Choice("brick", (8, 4, 16, 2)),
        Choice("brick_y", (8, 4, 16, 2)),
        Choice("brick_z", (8, 4, 16, 2)),
        Choice("stencil", tuple(by_name)),
        Choice("coarsen", (1, 2, 4, 8)),
        Choice("vector", (1, 2, 4)),
        Choice("unroll", (1, 2, 4)),
        constraint=valid,
    )

    def evaluate(config, device=A100_80GB):
        cost = stencil_cost(
            by_name[config["stencil"]], config.get("n", n),
            config["layout"], config["brick"],
            brick_y=config.get("brick_y"), brick_z=config.get("brick_z"),
            coarsen=config.get("coarsen", 1),
            vector=config.get("vector", 1), unroll=config.get("unroll", 1),
        )
        breakdown = estimate_time(cost, device)
        return {"time_seconds": breakdown.total, **cost_features(cost, breakdown)}

    return register_app(AppSpec(
        name="stencil",
        backend="cuda",
        space=space,
        evaluate=evaluate,
        reference=stencil_check_reference,
        check_case=stencil_check_case,
        perf_case=stencil_perf_case,
        paper_config={"layout": "brick"},
        description="3-D stencil data-layout sweep (Figure 12c)",
    ))
