"""The application registry: a uniform ``AppSpec`` per benchmark app.

Every paper application (matmul, grouped GEMM, softmax, LayerNorm, NW, LUD,
stencil, transpose) registers one :class:`AppSpec` that exposes, uniformly:

* ``space`` — the declarative configuration search space the layout
  autotuner sweeps (tile sizes, orderings, coarsening factors, skew/layout
  selections),
* ``generate(config)`` — produce the kernel for one configuration through
  the unified backend registry (``get_backend``); ``None`` for apps whose
  candidates share a single kernel text,
* ``evaluate(config)`` — the analytic performance estimate in seconds
  (every app's model bottoms out in :func:`repro.gpusim.estimate_time`),
  optionally a dict carrying extra metrics next to ``time_seconds``,
* ``paper_config`` — the axis values of the configuration the paper's
  evaluation prefers, which the tuner tests assert the sweep reproduces.

Specs live next to the app code (each app module defines an ``app_spec()``
factory); this module resolves names lazily so ``import repro`` stays light.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from importlib import import_module
from typing import Callable, Mapping

from ..tune.space import SearchSpace

__all__ = ["AppSpec", "CheckCase", "PerfCase", "register_app", "get_app", "available_apps"]


@dataclass(frozen=True)
class CheckCase:
    """One executable differential-check instance of an app configuration.

    Built by :attr:`AppSpec.check_case` for the verification subsystem
    (:mod:`repro.check`): a *small, full-launch* problem whose result can be
    compared element-wise against the app's NumPy reference model.

    ``config`` is the resolved check configuration — the sampled
    configuration with problem sizes shrunk to something the Python
    substrates execute in milliseconds, but with every axis that determines
    the generated kernel left intact.  ``inputs`` are the named NumPy input
    buffers (also what :attr:`AppSpec.reference` consumes); ``execute`` runs
    the kernel on the app's substrate at the full (never sampled) launch and
    returns ``(output array, trace or None)``.
    """

    config: dict
    inputs: dict
    execute: Callable


@dataclass(frozen=True)
class PerfCase(CheckCase):
    """A :class:`CheckCase` whose execution doubles as a measurement.

    Built by :attr:`AppSpec.perf_case` for the measured-profiling subsystem
    (:mod:`repro.perf`).  The executed problem is still small (the Python
    substrates interpret it in milliseconds), but the case records how the
    small run relates to the app's full-size problem so the measured
    :class:`~repro.gpusim.KernelCost` can be extrapolated:

    * ``scale`` — factor the extensive counters (bytes, flops, blocks) are
      multiplied by to represent the full-size run.  Intensive per-block
      properties — coalescing efficiency, bank-conflict degree, flops per
      byte — are exactly what the measurement is for and survive scaling
      unchanged.
    * ``launches`` — kernel launches of the full-size run (launch overhead
      is extensive in launches, not in blocks, so it scales separately).
    * ``target_config`` — the configuration the app's *analytic* model is
      evaluated at when computing the measured-vs-analytic disagreement
      (default: the case's own configuration, i.e. no extrapolation).
    * ``dtype`` / ``tensor_core`` — the arithmetic contract of the measured
      kernel, forwarded into the cost.
    """

    scale: float = 1.0
    launches: int = 1
    target_config: dict | None = None
    dtype: str = "fp32"
    tensor_core: bool = False


@dataclass(frozen=True)
class AppSpec:
    """One benchmark application, described uniformly for the autotuner."""

    name: str
    backend: str
    space: SearchSpace
    evaluate: Callable[[Mapping], object]
    generate: Callable[[Mapping], object] | None = None
    paper_config: Mapping = field(default_factory=dict)
    description: str = ""
    #: the config keys ``generate`` actually reads, or ``None`` when unknown
    #: (= every key).  Declaring them lets the compilation service collapse
    #: configurations that differ only in evaluation-side axes onto one
    #: compile request — e.g. every matmul tiling shares the kernel of its
    #: operand-layout variant — which is where batch dedup gets its leverage.
    generate_params: tuple[str, ...] | None = None
    #: NumPy ground-truth model ``reference(config, inputs) -> array``:
    #: given a resolved check configuration and the named input buffers of a
    #: :class:`CheckCase`, produce the expected output.  The differential
    #: runner (:mod:`repro.check`) asserts the substrate execution matches
    #: this within per-dtype tolerances.
    reference: Callable[[Mapping, Mapping], object] | None = None
    #: build a :class:`CheckCase` for one configuration:
    #: ``check_case(config, rng) -> CheckCase | None`` (``None`` when the
    #: configuration selects nothing executable, e.g. an external baseline).
    #: ``rng`` is a ``numpy.random.Generator`` — inputs must come from it so
    #: every check reproduces from its printed seed.
    check_case: Callable[[Mapping, object], "CheckCase | None"] | None = None
    #: build a :class:`PerfCase` for one configuration:
    #: ``perf_case(config, rng) -> PerfCase | None``.  Optional — the
    #: measured profiler (:mod:`repro.perf`) falls back to ``check_case``
    #: (measuring at the check size, no extrapolation) when absent.  Apps
    #: whose full-size behaviour the tuner must rank under measurement
    #: (LUD, NW, transpose) register one with the extrapolation scale set.
    perf_case: Callable[[Mapping, object], "PerfCase | None"] | None = None

    def generate_config(self, config: Mapping) -> dict:
        """Project ``config`` onto the axes that determine the generated kernel."""
        if self.generate_params is None:
            return dict(config)
        return {key: config[key] for key in self.generate_params if key in config}


_APPS: dict[str, AppSpec] = {}

#: app name -> defining module (imported on first ``get_app``)
_APP_MODULES = {
    "matmul": "repro.apps.matmul",
    "grouped_gemm": "repro.apps.grouped_gemm",
    "softmax": "repro.apps.softmax",
    "layernorm": "repro.apps.layernorm",
    "nw": "repro.apps.nw",
    "lud": "repro.apps.lud",
    "stencil": "repro.apps.stencil",
    "transpose": "repro.apps.transpose",
}


def register_app(spec: AppSpec) -> AppSpec:
    """Add one spec to the registry (apps call this at import time)."""
    _APPS[spec.name] = spec
    return spec


#: serialises first-use resolution so concurrent service workers racing on
#: the same app import/register it exactly once
_RESOLVE_LOCK = threading.Lock()


def get_app(name: str) -> AppSpec:
    """Resolve an app by name, importing its module on first use."""
    if name not in _APPS:
        module_name = _APP_MODULES.get(name)
        if module_name is None:
            raise ValueError(
                f"unknown app {name!r}; available apps: {', '.join(available_apps())}"
            )
        with _RESOLVE_LOCK:
            if name not in _APPS:
                module = import_module(module_name)
                if name not in _APPS:
                    # app modules register via their app_spec() factory
                    register_app(module.app_spec())
    return _APPS[name]


def available_apps() -> list[str]:
    """Names of every registrable application."""
    return sorted(set(_APPS) | set(_APP_MODULES))
