"""Grouped GEMM: a batch of equally-sized GEMMs through one LEGO kernel.

The Triton tutorial's grouped GEMM launches a single grid whose programs walk
the tiles of every group.  In LEGO terms the *computation layout* is simply a
three-level hierarchy — group, tile row, tile column — expressed with
``TileBy([G, nt_m, nt_n])``; the per-group data layouts are the same
``TileBy . OrderBy(Row)`` blocks as the single matmul, offset by the group's
base address.  Nothing else changes relative to :mod:`repro.apps.matmul`,
which is the point: the grouping is a layout, not new kernel logic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen import CodegenContext, TritonKernel, generate_triton_kernel
from ..core import Row, TileBy
from ..gpusim import A100_80GB, DeviceSpec
from ..symbolic import Var
from ..minitriton import compile_kernel, from_device, launch, to_device
from .matmul import MatmulConfig, matmul_performance

__all__ = [
    "GROUPED_GEMM_TEMPLATE",
    "GroupedGemmConfig",
    "build_grouped_gemm_context",
    "generate_grouped_gemm_kernel",
    "run_grouped_gemm",
    "grouped_gemm_reference",
    "grouped_gemm_check_reference",
    "grouped_gemm_check_case",
    "grouped_gemm_performance",
    "app_spec",
]


def grouped_gemm_check_reference(config, inputs) -> np.ndarray:
    """Ground truth in the kernel's dtype contract: FP16 in/out, FP32 accumulate."""
    return grouped_gemm_reference(
        np.asarray(inputs["a"]).astype(np.float16),
        np.asarray(inputs["b"]).astype(np.float16),
    ).astype(np.float16)


def grouped_gemm_check_case(config, rng):
    """A small full-launch grouped GEMM: 2 groups of 16^3 in 8x8 tiles.

    All candidates share one kernel text (``generate_params=()``), so the
    check tiling is free to shrink to whatever the interpreter runs fastest.
    """
    from .registry import CheckCase

    cfg = GroupedGemmConfig(groups=2, M=16, N=16, K=16, BM=8, BN=8, BK=8)
    a = rng.standard_normal((cfg.groups, cfg.M, cfg.K)).astype(np.float16)
    b = rng.standard_normal((cfg.groups, cfg.K, cfg.N)).astype(np.float16)

    def execute(kernel, device=None):
        return run_grouped_gemm(kernel, a, b, cfg, device=device)

    return CheckCase(
        config={"groups": cfg.groups, "M": cfg.M, "N": cfg.N, "K": cfg.K,
                "BM": cfg.BM, "BN": cfg.BN, "BK": cfg.BK},
        inputs={"a": a, "b": b},
        execute=execute,
    )


def app_spec():
    """The grouped-GEMM :class:`~repro.apps.registry.AppSpec` for the autotuner.

    The paper's grid is the tile-size triple; the extended axes are the
    launch shape (``num_warps``, ``stages``), the program-id grouping
    (``GM``) and the group traversal order (``group_major=1`` walks all
    groups at each tile coordinate, thrashing L2 across group base
    addresses — a mild penalty, so the default order is listed first).
    Together they take the valid space past 10^4 points.
    """
    from ..gpusim import cost_features, estimate_time
    from ..tune.space import Choice, SearchSpace
    from .registry import AppSpec, register_app

    groups, n = 8, 1024
    smem_limit = A100_80GB.smem_per_sm_bytes

    def valid(config) -> bool:
        smem = (config["BM"] + config["BN"]) * config["BK"] * 2 * config["stages"]
        if smem > smem_limit:
            return False
        per_thread = config["BM"] * config["BN"] / (32 * config["num_warps"])
        return 1 <= per_thread <= 256

    space = SearchSpace(
        Choice("BM", (64, 32, 128, 16, 256)),
        Choice("BN", (64, 32, 128, 16, 256)),
        Choice("BK", (32, 64, 16, 128, 8)),
        Choice("GM", (8, 4, 16, 1, 2)),
        Choice("num_warps", (8, 4, 16, 2, 1)),
        Choice("stages", (1, 2, 3)),
        Choice("group_major", (0, 1)),
        constraint=valid,
    )

    def evaluate(config, device=A100_80GB):
        # sizes and device may be overridden (figure harnesses, measured profiler)
        cfg = GroupedGemmConfig(groups=config.get("groups", groups),
                                M=config.get("M", n), N=config.get("N", n),
                                K=config.get("K", n),
                                BM=config["BM"], BN=config["BN"], BK=config["BK"],
                                GM=config.get("GM", 8))
        from .matmul import matmul_cost

        cost = matmul_cost(
            cfg.per_group(), "lego",
            threads_per_block=32 * config.get("num_warps", 8),
            stages=config.get("stages", 1),
        )
        # one fused launch: extensive counters scale by the group count, and
        # group-major traversal breaks the per-group L2 tile reuse
        cost = cost.scaled(cfg.groups)
        if config.get("group_major", 0):
            cost.dram_efficiency *= 0.97
            cost.dram_bytes *= 1.05
        breakdown = estimate_time(cost, device)
        return {"time_seconds": breakdown.total, **cost_features(cost, breakdown)}

    return register_app(AppSpec(
        name="grouped_gemm",
        backend="triton",
        space=space,
        evaluate=evaluate,
        generate=lambda config: generate_grouped_gemm_kernel(),
        generate_params=(),
        reference=grouped_gemm_check_reference,
        check_case=grouped_gemm_check_case,
        paper_config={"BM": 64, "BN": 64, "BK": 32},
        description="Grouped GEMM tiling sweep (Figure 11)",
    ))


GROUPED_GEMM_TEMPLATE = '''\
@triton.jit
def grouped_gemm_kernel(a_ptr, b_ptr, c_ptr, G, M, N, K,
                        BM: tl.constexpr, BN: tl.constexpr, BK: tl.constexpr):
    pid = tl.program_id(axis=0)
    nt_m = tl.cdiv(M, BM)
    nt_n = tl.cdiv(N, BN)
    group = {{ group_id }}
    pid_m = {{ lpid_m }}
    pid_n = {{ lpid_n }}
    accumulator = tl.zeros((BM, BN), dtype=tl.float32)
    for k in range(0, tl.cdiv(K, BK)):
        a_ptrs = a_ptr + group * M * K + {{ la_optr }}
        b_ptrs = b_ptr + group * K * N + {{ lb_optr }}
        a = tl.load(a_ptrs)
        b = tl.load(b_ptrs)
        accumulator = tl.dot(a, b, accumulator)
    c = accumulator.to(tl.float16)
    c_ptrs = c_ptr + group * M * N + {{ lc_optr }}
    tl.store(c_ptrs, c)
'''


@dataclass(frozen=True)
class GroupedGemmConfig:
    """A batch of ``groups`` GEMMs, all of shape ``M x N x K``."""

    groups: int
    M: int
    N: int
    K: int
    BM: int = 64
    BN: int = 64
    BK: int = 32
    GM: int = 8

    def grid(self) -> int:
        return self.groups * (self.M // self.BM) * (self.N // self.BN)

    def per_group(self) -> MatmulConfig:
        return MatmulConfig(self.M, self.N, self.K, self.BM, self.BN, self.BK, GM=self.GM)


def build_grouped_gemm_context() -> CodegenContext:
    """Computation layout ``TileBy([G, nt_m, nt_n])`` plus per-group data layouts."""
    G, M, N, K, BM, BN, BK = (Var(n) for n in ["G", "M", "N", "K", "BM", "BN", "BK"])
    pid, nt_m, nt_n, k = Var("pid"), Var("nt_m"), Var("nt_n"), Var("k")
    pid_m, pid_n, group = Var("pid_m"), Var("pid_n"), Var("group")

    ctx = CodegenContext(name="grouped_gemm")
    ctx.size(G, M, N, K, BM, BN, BK, nt_m, nt_n)
    ctx.index(pid, G * nt_m * nt_n)
    ctx.index(k, K // BK)
    ctx.index(pid_m, M // BM)
    ctx.index(pid_n, N // BN)
    ctx.index(group, G)
    ctx.divisible(M, BM)
    ctx.divisible(N, BN)
    ctx.divisible(K, BK)

    # three-level computation layout: group, then the 2-D tile grid row-major
    compute_layout = TileBy([G, nt_m, nt_n])
    ctx.bind_inverse(["group_id", "lpid_m", "lpid_n"], compute_layout, pid)

    data_a = TileBy([M // BM, K // BK], [BM, BK]).OrderBy(Row(M, K))
    data_b = TileBy([K // BK, N // BN], [BK, BN]).OrderBy(Row(K, N))
    data_c = TileBy([M // BM, N // BN], [BM, BN]).OrderBy(Row(M, N))
    ctx.bind("la_optr", data_a[pid_m, k, :, :])
    ctx.bind("lb_optr", data_b[k, pid_n, :, :])
    ctx.bind("lc_optr", data_c[pid_m, pid_n, :, :])
    return ctx


def generate_grouped_gemm_kernel() -> TritonKernel:
    return generate_triton_kernel("grouped_gemm", GROUPED_GEMM_TEMPLATE, build_grouped_gemm_context())


def grouped_gemm_reference(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Reference result: ``a`` and ``b`` are stacked ``(G, M, K)`` / ``(G, K, N)``."""
    return np.matmul(a.astype(np.float32), b.astype(np.float32))


def run_grouped_gemm(
    kernel: TritonKernel,
    a: np.ndarray,
    b: np.ndarray,
    config: GroupedGemmConfig,
    sample_programs: int | None = None,
    device: DeviceSpec | None = None,
):
    """Execute the grouped GEMM kernel; ``a`` is ``(G, M, K)``, ``b`` is ``(G, K, N)``."""
    g, m, k = a.shape
    n = b.shape[2]
    a_buf = to_device(a.astype(np.float16).reshape(-1), "a")
    b_buf = to_device(b.astype(np.float16).reshape(-1), "b")
    c_buf = to_device(np.zeros(g * m * n, dtype=np.float16), "c")
    fn = compile_kernel(kernel.source, "grouped_gemm_kernel")
    trace = launch(
        fn,
        grid=config.grid(),
        kernel_args={
            "a_ptr": a_buf, "b_ptr": b_buf, "c_ptr": c_buf,
            "G": g, "M": m, "N": n, "K": k,
            "BM": config.BM, "BN": config.BN, "BK": config.BK,
        },
        sample_programs=sample_programs,
        sector_bytes=device.dram_sector_bytes if device is not None else 32,
    )
    return from_device(c_buf, (g, m, n)), trace


def grouped_gemm_performance(
    config: GroupedGemmConfig,
    implementation: str = "lego",
    device: DeviceSpec = A100_80GB,
) -> float:
    """Estimated grouped GEMM time.

    The fused grouped kernel amortises launch overhead over all groups; the
    cuBLAS path (as dispatched by PyTorch in the paper's comparison) launches
    one GEMM per group.
    """
    per_group = matmul_performance(config.per_group(), "cublas" if implementation == "cublas" else "lego", device)
    if implementation == "cublas":
        return per_group * config.groups
    overhead = device.launch_overhead_us * 1e-6
    return (per_group - overhead) * config.groups + overhead
