"""LU decomposition (Rodinia LUD) with thread coarsening as a layout.

Rodinia's LUD factors an ``n x n`` matrix in ``B x B`` blocks: for each step
``k`` a *diagonal* kernel factors block ``(k, k)``, a *perimeter* kernel
updates the row and column panels, and an *internal* kernel updates the
trailing submatrix.  The paper re-imagines thread coarsening as a LEGO
thread-block layout (Table I, row "12b"): the logical LUD block of size
``B x B`` is tiled as ``GroupBy([R, R], [T, T]).OrderBy(Row(R*T, R*T))``
where ``T x T`` is the CUDA block and ``R`` the per-thread coarsening
factor, so the same kernel body serves every configuration.

Figure 12b's result: the best configuration uses an LUD block of ``64`` with
coarsening ``4`` (CUDA block fixed at ``16 x 16``), because larger blocks
move less data per step and expose enough work per thread block.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen import CodegenContext, CudaKernel, generate_cuda_kernel, note_fallback, note_static_proof
from ..core import GroupBy, Row
from ..gpusim import A100_80GB, DeviceSpec, KernelCost, cost_features, estimate_time
from ..minicuda import GlobalArray, launch
from ..symbolic import Var, affine_strides, is_mixed_radix_bijection

__all__ = [
    "LudConfig",
    "coarsened_thread_layout",
    "LUD_INTERNAL_TEMPLATE",
    "generate_lud_internal_kernel",
    "lud_reference",
    "lud_blocked",
    "lud_check_reference",
    "lud_check_case",
    "lud_perf_case",
    "run_lud_internal",
    "check_element_offsets",
    "prove_element_offset_bijection",
    "assert_element_offset_bijection",
    "lud_performance",
    "lud_performance_vectorized",
    "lud_configurations",
    "app_spec",
]


@dataclass(frozen=True)
class LudConfig:
    """One LUD configuration: matrix size, LUD block size and CUDA block side."""

    n: int
    block: int = 16
    cuda_block: int = 16

    def __post_init__(self):
        if self.n % self.block != 0:
            raise ValueError(f"matrix size {self.n} must be a multiple of the block {self.block}")
        if self.block % self.cuda_block != 0:
            raise ValueError(
                f"LUD block {self.block} must be a multiple of the CUDA block {self.cuda_block}"
            )

    @property
    def coarsening(self) -> int:
        """Elements computed per thread along each dimension."""
        return self.block // self.cuda_block

    @property
    def num_blocks(self) -> int:
        return self.n // self.block


def coarsened_thread_layout(block: int, cuda_block: int) -> GroupBy:
    """The Table I thread layout: ``GroupBy([R, R], [T, T]).OrderBy(Row(R*T, R*T))``.

    Logical coordinates are ``(r_i, r_j, t_i, t_j)`` — which of the ``R x R``
    coarsening repetitions a thread is handling and the thread's position in
    the ``T x T`` CUDA block; ``apply`` gives the element of the LUD block it
    owns, laid out row-major over the full ``(R*T) x (R*T)`` block.
    """
    coarsening = block // cuda_block
    return GroupBy([coarsening, coarsening], [cuda_block, cuda_block]).OrderBy(Row(block, block))


LUD_INTERNAL_TEMPLATE = """\
__global__ void lud_internal(float *m, int matrix_dim, int offset)
{{
    __shared__ float peri_row[{B}][{B}];
    __shared__ float peri_col[{B}][{B}];
    int tx = threadIdx.x;
    int ty = threadIdx.y;
    // LEGO thread layout: each thread owns {R}x{R} elements of the {B}x{B} block
    for (int r_i = 0; r_i < {R}; ++r_i)
      for (int r_j = 0; r_j < {R}; ++r_j) {{
        int element = {{{{ element_offset }}}};
        int i = element / {B};
        int j = element % {B};
        float sum = 0.0f;
        for (int k = 0; k < {B}; ++k)
            sum += peri_col[i][k] * peri_row[k][j];
        m[(offset + blockIdx.y * {B} + i) * matrix_dim + offset + blockIdx.x * {B} + j] -= sum;
      }}
}}
"""


def generate_lud_internal_kernel(config: LudConfig) -> CudaKernel:
    """Instantiate the internal-kernel template for one coarsening configuration.

    The only generated expression is the element offset each thread derives
    from the coarsened thread layout; the kernel body is otherwise identical
    across configurations (coarsening is "just a layout").
    """
    layout = coarsened_thread_layout(config.block, config.cuda_block)
    r_i, r_j, tx, ty = Var("r_i"), Var("r_j"), Var("tx"), Var("ty")
    ctx = CodegenContext(name=f"lud_internal_b{config.block}")
    coarsening = config.coarsening
    ctx.index(r_i, coarsening)
    ctx.index(r_j, coarsening)
    ctx.index(tx, config.cuda_block)
    ctx.index(ty, config.cuda_block)
    ctx.bind("element_offset", layout.apply(r_i, r_j, ty, tx))
    ctx.require_in_bounds("element_offset", 0, config.block * config.block - 1)
    template = LUD_INTERNAL_TEMPLATE.format(B=config.block, R=coarsening)
    return generate_cuda_kernel(f"lud_internal_b{config.block}", template, ctx)


def lud_reference(matrix: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Unblocked Doolittle LU decomposition (no pivoting); returns ``(L, U)``."""
    a = matrix.astype(np.float64).copy()
    n = a.shape[0]
    lower = np.eye(n)
    for k in range(n):
        lower[k + 1 :, k] = a[k + 1 :, k] / a[k, k]
        a[k + 1 :, k:] -= np.outer(lower[k + 1 :, k], a[k, k:])
        a[k + 1 :, k] = 0.0
    return lower, a


def lud_blocked(matrix: np.ndarray, block: int) -> np.ndarray:
    """Blocked in-place LUD mirroring the Rodinia kernel structure.

    The result stores ``L`` (unit diagonal implied) below the diagonal and
    ``U`` on/above it, exactly like the Rodinia output, so correctness can be
    checked as ``L @ U == A``.  The per-step phases correspond to the
    diagonal / perimeter / internal kernels.
    """
    a = matrix.astype(np.float64).copy()
    n = a.shape[0]
    if n % block != 0:
        raise ValueError("matrix size must be a multiple of the block size")
    for start in range(0, n, block):
        end = start + block
        # diagonal kernel: factor the diagonal block
        for k in range(start, end):
            a[k + 1 : end, k] /= a[k, k]
            a[k + 1 : end, k + 1 : end] -= np.outer(a[k + 1 : end, k], a[k, k + 1 : end])
        if end == n:
            break
        diag = a[start:end, start:end]
        lower = np.tril(diag, -1) + np.eye(block)
        upper = np.triu(diag)
        # perimeter kernel: update the row panel and the column panel
        a[start:end, end:] = np.linalg.solve(lower, a[start:end, end:])
        a[end:, start:end] = np.linalg.solve(upper.T, a[end:, start:end].T).T
        # internal kernel: rank-`block` update of the trailing submatrix
        a[end:, end:] -= a[end:, start:end] @ a[start:end, end:]
    return a


def split_lu(packed: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Split the packed LUD output into ``(L, U)`` factors."""
    lower = np.tril(packed, -1) + np.eye(packed.shape[0])
    upper = np.triu(packed)
    return lower, upper


def check_element_offsets(kernel, config: LudConfig) -> None:
    """Prove the kernel's generated ``element_offset`` covers its block.

    Evaluates the lowered index expression
    (:meth:`~repro.codegen.backend.GeneratedKernel.evaluate_bindings`) for
    every ``(r_i, r_j, ty, tx)`` a thread block enumerates and asserts the
    offsets are a bijection onto the ``B x B`` elements: the internal kernel
    computes each owned element correctly *by construction*, so a coarsening
    layout is semantically right exactly when no element is skipped or
    written twice.  Raises ``ValueError`` on violation.
    """
    if "element_offset" not in kernel.bindings:
        raise ValueError(f"kernel {kernel.name!r} has no element_offset binding to check")
    t, r, b = config.cuda_block, config.coarsening, config.block
    offsets = np.fromiter(
        (
            kernel.evaluate_bindings({"r_i": r_i, "r_j": r_j, "ty": ty, "tx": tx})["element_offset"]
            for r_i in range(r)
            for r_j in range(r)
            for ty in range(t)
            for tx in range(t)
        ),
        dtype=np.int64,
        count=r * r * t * t,
    )
    if not np.array_equal(np.sort(offsets), np.arange(b * b)):
        raise ValueError(
            f"element_offset of {kernel.name!r} is not a bijection onto the "
            f"{b}x{b} block: covered {np.unique(offsets).size}/{b * b} elements"
        )


def prove_element_offset_bijection(kernel, config: LudConfig) -> bool | None:
    """Statically decide whether ``element_offset`` is a bijection onto the block.

    Decomposes the lowered expression into ``const + Σ stride · index`` over
    the coarsened-layout coordinates and checks that the strides form a
    permuted mixed-radix basis for the ``B x B`` extent
    (:func:`~repro.symbolic.is_mixed_radix_bijection`).  Returns ``True`` /
    ``False`` on a definitive structural verdict and ``None`` when the
    expression is not affine in the thread coordinates (e.g. a swizzled
    layout lowered through ``%``), in which case the caller must fall back
    to runtime enumeration.
    """
    binding = kernel.bindings.get("element_offset")
    if binding is None:
        raise ValueError(f"kernel {kernel.name!r} has no element_offset binding to check")
    t, r, b = config.cuda_block, config.coarsening, config.block
    extents = {"r_i": r, "r_j": r, "ty": t, "tx": t}
    decomposed = affine_strides(binding.expr, tuple(extents))
    if decomposed is None:
        return None
    const, strides = decomposed
    pairs = [(strides.get(name, 0), extent) for name, extent in extents.items()]
    return is_mixed_radix_bijection(const, pairs, b * b)


def assert_element_offset_bijection(kernel, config: LudConfig) -> str:
    """Discharge the bijectivity obligation, statically when possible.

    The static mixed-radix proof covers every affine coarsening layout — the
    entire tuned LUD search space — so the hot path (one call per generated
    configuration during search and verification) no longer enumerates
    ``B^2`` index combinations.  Non-affine layouts fall back to the
    enumeration check, which stays as the test-only cross-check as well.
    Returns ``"static"`` or ``"enumerated"``; raises ``ValueError`` when the
    layout provably skips or doubles an element.
    """
    verdict = prove_element_offset_bijection(kernel, config)
    if verdict is None:
        note_fallback()
        check_element_offsets(kernel, config)
        return "enumerated"
    note_static_proof()
    if not verdict:
        b = config.block
        raise ValueError(
            f"element_offset of {kernel.name!r} is not a bijection onto the "
            f"{b}x{b} block: strides are not a permuted mixed-radix basis"
        )
    return "static"


def lud_check_reference(config, inputs) -> np.ndarray:
    """Ground truth: unblocked Doolittle factors, packed like the Rodinia output."""
    lower, upper = lud_reference(inputs["matrix"])
    return np.tril(lower, -1) + upper


def lud_check_case(config, rng):
    """Check one LUD coarsening configuration at a small problem size.

    Two checks ride in one case: the blocked factorisation (the Rodinia
    kernel-structure mirror) must match the unblocked reference, and the
    generated coarsened-thread-layout expression must enumerate the block
    bijectively — discharged statically by the mixed-radix stride proof
    (:func:`assert_element_offset_bijection`), with the old runtime
    enumeration kept only as the non-affine fallback.  The matrix is made
    diagonally dominant so the factorisation is well-conditioned.
    """
    from .registry import CheckCase

    block = config.get("block", 16)
    cuda_block = config.get("cuda_block", 16)
    cfg = LudConfig(n=2 * block, block=block, cuda_block=cuda_block)
    matrix = rng.standard_normal((cfg.n, cfg.n)) + cfg.n * np.eye(cfg.n)

    def execute(kernel):
        if kernel is not None and kernel.bindings:
            # cache-restored kernels carry no live expression nodes; the
            # blocked-vs-reference factorisation check below still applies
            assert_element_offset_bijection(kernel, cfg)
        return lud_blocked(matrix, cfg.block), None

    return CheckCase(
        config={"n": cfg.n, "block": block, "cuda_block": cuda_block},
        inputs={"matrix": matrix},
        execute=execute,
    )


def _lud_internal_block_kernel(ctx, m: GlobalArray, offset: int, block: int):
    """One internal-kernel thread block on the mini-CUDA substrate.

    Mirrors :data:`LUD_INTERNAL_TEMPLATE`: the block stages its two
    perimeter panels into shared memory and each thread computes the
    ``R x R`` elements the coarsened thread layout assigns it
    (``i = r_i * T + ty``, ``j = r_j * T + tx`` — exactly the
    ``element_offset`` expression the generator derives from
    ``GroupBy([R, R], [T, T]).OrderBy(Row(B, B))``).  The inner product is
    register-blocked the way the coarsened CUDA kernel is: per ``k`` each
    thread loads its ``R`` panel fragments once and reuses them across the
    ``R x R`` accumulators, which is why coarsening divides the
    shared-memory traffic per flop — the mechanism behind Figure 12b that
    a measured profile must reproduce.
    """
    b = block
    t = ctx.blockDim.x
    r = b // t
    peri_row = ctx.shared_array((b, b), dtype=np.float32, name="peri_row")
    peri_col = ctx.shared_array((b, b), dtype=np.float32, name="peri_col")
    tx, ty = ctx.tx, ctx.ty
    row0 = offset + (ctx.blockIdx.y + 1) * b
    col0 = offset + (ctx.blockIdx.x + 1) * b
    # stage the panels: each thread loads its R x R elements of each
    for r_i in range(r):
        for r_j in range(r):
            i = r_i * t + ty
            j = r_j * t + tx
            peri_row.store(m.load(ctx, offset + i, col0 + j), i, j)
            peri_col.store(m.load(ctx, row0 + i, offset + j), i, j)
    ctx.syncthreads()
    accumulators = [[np.zeros(tx.shape, dtype=np.float32) for _ in range(r)] for _ in range(r)]
    for k in range(b):
        col_fragment = [peri_col.load(r_i * t + ty, k) for r_i in range(r)]
        row_fragment = [peri_row.load(k, r_j * t + tx) for r_j in range(r)]
        for r_i in range(r):
            for r_j in range(r):
                # out-of-place so the accumulator can widen to one row per
                # block under the batched engine
                accumulators[r_i][r_j] = accumulators[r_i][r_j] + col_fragment[r_i] * row_fragment[r_j]
        ctx.count_flops(2 * r * r * tx.size)
    ctx.syncthreads()
    for r_i in range(r):
        for r_j in range(r):
            i = r_i * t + ty
            j = r_j * t + tx
            value = m.load(ctx, row0 + i, col0 + j) - accumulators[r_i][r_j]
            m.store(ctx, value, row0 + i, col0 + j)


def run_lud_internal(matrix: np.ndarray, config: LudConfig, step: int = 0,
                     device: DeviceSpec = A100_80GB):
    """Run one wave of internal-kernel blocks over the trailing submatrix.

    ``matrix`` holds the in-progress factorisation with step ``step``'s
    diagonal and perimeter phases already applied; the launch updates every
    trailing block of that step (``(nb - step - 1)^2`` thread blocks of
    ``cuda_block^2`` threads), returning ``(updated matrix, trace)``.  This
    is the measured counterpart of the internal-kernel term of
    :func:`lud_performance` — the phase that dominates end-to-end LUD time.
    """
    trailing = config.num_blocks - step - 1
    if trailing < 1:
        raise ValueError(f"step {step} of a {config.num_blocks}-block LUD has no trailing blocks")
    static_smem = 2 * config.block * config.block * 4
    if static_smem > device.max_static_smem_bytes:
        # the CUDA kernel declares both panels as static __shared__ arrays,
        # which caps the LUD block well below the SM's physical capacity
        raise ValueError(
            f"LUD block {config.block} needs {static_smem} bytes of static shared "
            f"memory, over the {device.max_static_smem_bytes}-byte launch limit"
        )
    gmem = GlobalArray(matrix.astype(np.float32), name="m")
    trace = launch(
        _lud_internal_block_kernel,
        grid=(trailing, trailing),
        block=(config.cuda_block, config.cuda_block),
        args=(gmem, step * config.block, config.block),
        device=device,
    )
    return gmem.to_numpy(), trace


def lud_perf_case(config, rng, device: DeviceSpec = A100_80GB):
    """The measured-profiling case: one internal wave plus extrapolation.

    Executes the first step's internal kernel on a two-block problem (one
    trailing block) and extrapolates to the full factorisation: the
    internal kernel launches ``(nb - k - 1)^2`` blocks at step ``k``, so
    the per-block measurement scales by ``sum of squares``; the host loop
    launches the diagonal, perimeter and internal kernels once per step.
    Per-block intensive properties — shared-memory traffic per flop (the
    register-blocking effect of coarsening), bank conflicts, coalescing —
    are what the measurement contributes.  Configurations whose two static
    ``__shared__`` panels exceed ``device.max_static_smem_bytes`` select
    nothing executable (see :func:`run_lud_internal`).
    """
    from .registry import PerfCase

    block = config.get("block", 16)
    cuda_block = config.get("cuda_block", 16)
    target_n = config.get("n", 2048)
    if 2 * block * block * 4 > device.max_static_smem_bytes:
        return None  # static __shared__ panels would not launch (see run_lud_internal)
    cfg = LudConfig(n=2 * block, block=block, cuda_block=cuda_block)
    matrix = (rng.standard_normal((cfg.n, cfg.n)) + cfg.n * np.eye(cfg.n)).astype(np.float32)

    def execute(kernel, device=device):
        return run_lud_internal(matrix, cfg, step=0, device=device or A100_80GB)

    target_blocks = target_n // block
    internal_blocks = sum(j * j for j in range(1, target_blocks))
    return PerfCase(
        config={"n": cfg.n, "block": block, "cuda_block": cuda_block},
        inputs={"matrix": matrix},
        execute=execute,
        scale=float(internal_blocks),
        launches=3 * target_blocks,
        target_config={"n": target_n, "block": block, "cuda_block": cuda_block},
    )


def lud_performance(config: LudConfig, device: DeviceSpec = A100_80GB) -> float:
    """Estimated end-to-end LUD time for one (block, coarsening) configuration.

    The internal kernel dominates: for step ``k`` it launches
    ``(nb - k - 1)^2`` thread blocks, each reading its two perimeter panels
    plus its own block and performing ``2 B^3`` flops.  Larger LUD blocks
    mean fewer steps (fewer kernel launches), less repeated panel traffic and
    more work per thread block — but need coarsening to stay within the CUDA
    block limit, which is exactly the Figure 12b trade-off.
    """
    n, block = config.n, config.block
    nb = config.num_blocks
    element = 4.0

    total = 0.0
    launch_overhead = device.launch_overhead_us * 1e-6
    threads_per_block = config.cuda_block * config.cuda_block
    for k in range(nb):
        trailing = nb - k - 1
        # diagonal + perimeter kernels (small, latency/launch dominated)
        perim_blocks = max(1, 2 * trailing)
        perim_bytes = element * (2 * trailing + 1) * block * block * 3
        perim_flops = (2 * trailing + 1) * block ** 3
        perim_cost = KernelCost(
            name="lud_perimeter",
            flops=perim_flops,
            dram_bytes=perim_bytes,
            blocks=float(perim_blocks),
            threads_per_block=float(threads_per_block),
            threads=float(perim_blocks * threads_per_block),
            smem_per_block=float(2 * block * block * element),
        )
        total += estimate_time(perim_cost, device).total + 2 * launch_overhead
        if trailing == 0:
            continue
        # internal kernel
        internal_blocks = trailing * trailing
        internal_bytes = element * internal_blocks * (3 * block * block)
        internal_flops = 2.0 * internal_blocks * block ** 3
        internal_cost = KernelCost(
            name="lud_internal",
            flops=internal_flops,
            dram_bytes=internal_bytes,
            blocks=float(internal_blocks),
            threads_per_block=float(threads_per_block),
            threads=float(internal_blocks * threads_per_block),
            smem_per_block=float(2 * block * block * element),
            compute_efficiency=0.6,
        )
        total += estimate_time(internal_cost, device).total + launch_overhead
    return total


def lud_configurations(n: int) -> list[LudConfig]:
    """The Figure 12b configuration sweep: LUD blocks 16/32/64, CUDA block 16."""
    return [LudConfig(n=n, block=b, cuda_block=16) for b in (16, 32, 64)]


# Satellite-axis efficiency factors for the *internal* kernel.  The template's
# row-major shared buffers are already conflict-free for its access pattern
# (``peri_col[i][k]`` is a warp broadcast, ``peri_row[k][j]`` is stride-1), so
# the alternative shared/panel layouts and the code-shape knobs can only cost:
# padding wastes shared memory (occupancy), skewing adds index arithmetic,
# column-major staging de-coalesces the panel loads, deep unrolling spills
# registers, wide vector loads constrain alignment.  Every factor is <= 1 and
# the neutral value leads its axis, so the Figure 12b winner — block 64,
# CUDA block 16, all knobs at their defaults — survives the 10^4-point space
# by construction (exact ties resolve by enumeration order).
_LUD_SMEM_EFF = {"row": 1.0, "padded": 1.0, "skew": 0.99, "col": 0.95}
_LUD_PANEL_EFF = {"row": 1.0, "padded": 0.995, "skew": 0.99, "col": 0.9}
_LUD_UNROLL_EFF = {1: 1.0, 2: 1.0, 4: 1.0, 8: 0.99, 16: 0.97}
_LUD_VECTOR_EFF = {1: 1.0, 2: 0.998, 4: 0.995}


def lud_performance_vectorized(
    config: LudConfig,
    device: DeviceSpec = A100_80GB,
    *,
    smem_layout: str = "row",
    panel_layout: str = "row",
    unroll: int = 1,
    prefetch: int = 0,
    vector: int = 1,
) -> tuple[float, dict]:
    """:func:`lud_performance` as one NumPy sweep over the factorisation steps.

    Replicates the per-step roofline of the reference loop exactly (same
    costs, same occupancy formula, same launch-overhead accounting) but
    evaluates all ``nb`` steps as arrays, which is what lets the autotuner
    walk the extended 10^4-point space in tenths of a second instead of
    minutes.  At the default satellite values the total matches the loop to
    floating-point roundoff (pinned by a test); the satellite knobs apply
    the ``_LUD_*_EFF`` penalty factors to the internal kernel.  Returns
    ``(total_seconds, features)`` where ``features`` is the aggregate
    analytic-trace dict of :func:`repro.gpusim.cost_features`.
    """
    n, block, tpb = config.n, config.block, config.cuda_block * config.cuda_block
    nb = config.num_blocks
    element = 4.0
    launch_overhead = device.launch_overhead_us * 1e-6

    pad = block + 1 if smem_layout == "padded" else block
    smem_per_block = 2.0 * block * pad * element * (2 if prefetch else 1)
    base_smem_per_block = 2.0 * block * block * element
    internal_compute_eff = 0.6 * _LUD_SMEM_EFF[smem_layout] * _LUD_UNROLL_EFF[unroll]
    internal_dram_eff = 0.85 * _LUD_PANEL_EFF[panel_layout] * _LUD_VECTOR_EFF[vector]

    def occupancy(blocks, per_block_smem):
        # occupancy_factor() on an array of block counts (scalar per-SM terms)
        wave = np.minimum(1.0, blocks / device.num_sms)
        resident = max(1, int(device.max_threads_per_sm // max(tpb, 1)))
        resident = min(resident, device.max_blocks_per_sm)
        if per_block_smem > 0:
            resident = min(resident, max(1, int(device.smem_per_sm_bytes // per_block_smem)))
        warps = resident * tpb / device.warp_size
        hiding = min(1.0, resident / 4.0, warps / 16.0)
        return np.maximum(0.05, wave * (0.5 + 0.5 * hiding))

    def busy(flops, dram_bytes, compute_eff, dram_eff, blocks, per_block_smem):
        compute = flops / (device.peak_flops("fp32") * compute_eff * 1e9)
        dram = dram_bytes / (device.dram_bandwidth_gbs * 1e9 * dram_eff)
        l2 = dram_bytes / (device.l2_bandwidth_gbs * 1e9)
        return np.maximum(compute, np.maximum(dram, l2)) / occupancy(blocks, per_block_smem)

    trailing = nb - 1 - np.arange(nb, dtype=np.float64)
    perim_blocks = np.maximum(1.0, 2.0 * trailing)
    perim_bytes = element * (2.0 * trailing + 1.0) * block * block * 3.0
    perim_flops = (2.0 * trailing + 1.0) * float(block) ** 3
    total = float(np.sum(
        busy(perim_flops, perim_bytes, 0.85, 0.85, perim_blocks, base_smem_per_block)
    )) + nb * 3 * launch_overhead

    inner = trailing[trailing > 0]
    internal_blocks = inner * inner
    internal_bytes = element * internal_blocks * (3.0 * block * block)
    internal_flops = 2.0 * internal_blocks * float(block) ** 3
    internal_busy = busy(internal_flops, internal_bytes,
                         internal_compute_eff, internal_dram_eff,
                         internal_blocks, smem_per_block)
    # the loop pays estimate_time's own launch overhead plus one host-side
    # overhead per internal step (and two per perimeter step, folded above)
    total += float(np.sum(internal_busy)) + inner.size * 2 * launch_overhead

    aggregate = KernelCost(
        name="lud",
        flops=float(np.sum(perim_flops) + np.sum(internal_flops)),
        dram_bytes=float(np.sum(perim_bytes) + np.sum(internal_bytes)),
        blocks=float(np.sum(perim_blocks) + np.sum(internal_blocks)),
        threads_per_block=float(tpb),
        smem_per_block=smem_per_block,
        compute_efficiency=internal_compute_eff,
        dram_efficiency=internal_dram_eff,
        launches=3 * nb,
    )
    aggregate.threads = aggregate.blocks * tpb
    features = cost_features(aggregate, estimate_time(aggregate, device))
    return total, features


def app_spec():
    """The LUD :class:`~repro.apps.registry.AppSpec` for the autotuner.

    Thread coarsening is "just a layout" here, so the space is the cross of
    LUD block sizes and CUDA block sides (coarsening is their ratio) with the
    divisibility constraints ``LudConfig`` enforces.  The paper's winner —
    LUD block 64, CUDA block 16x16, coarsening 4 (Figure 12b) — leads each
    axis so exact performance-model ties resolve toward it; near-ties are
    further broken by the GPU-weighted op count of the generated
    ``element_offset`` expression.
    """
    from ..tune.space import Choice, SearchSpace
    from .registry import AppSpec, register_app

    n = 2048

    def valid(c) -> bool:
        if c["block"] % c["cuda_block"] != 0 or n % c["block"] != 0:
            return False
        coarsening = c["block"] // c["cuda_block"]
        # vector loads move whole fragments of a thread's coarsened strip,
        # and the k-loop cannot unroll past the block depth
        return coarsening % c["vector"] == 0 and c["unroll"] <= c["block"]

    space = SearchSpace(
        Choice("block", (64, 16, 32, 8, 128, 256)),
        Choice("cuda_block", (16, 4, 8, 32, 2)),
        Choice("smem_layout", ("row", "padded", "skew", "col")),
        Choice("panel_layout", ("row", "padded", "skew", "col")),
        Choice("unroll", (1, 2, 4, 8, 16)),
        Choice("prefetch", (0, 1)),
        Choice("vector", (1, 2, 4)),
        constraint=valid,
    )

    def config_of(config) -> LudConfig:
        # the figure harnesses may override the problem size per sweep
        return LudConfig(n=config.get("n", n), block=config["block"], cuda_block=config["cuda_block"])

    def evaluate(config, device=A100_80GB):
        total, features = lud_performance_vectorized(
            config_of(config), device,
            smem_layout=config.get("smem_layout", "row"),
            panel_layout=config.get("panel_layout", "row"),
            unroll=config.get("unroll", 1),
            prefetch=config.get("prefetch", 0),
            vector=config.get("vector", 1),
        )
        return {"time_seconds": total, **features}

    return register_app(AppSpec(
        name="lud",
        backend="cuda",
        space=space,
        evaluate=evaluate,
        generate=lambda config: generate_lud_internal_kernel(config_of(config)),
        generate_params=("n", "block", "cuda_block"),
        reference=lud_check_reference,
        check_case=lud_check_case,
        perf_case=lud_perf_case,
        paper_config={"block": 64, "cuda_block": 16},
        description="LUD thread-coarsening-as-layout sweep (Figure 12b), "
                    "extended with shared/panel-layout and code-shape axes",
    ))
