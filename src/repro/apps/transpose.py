"""2-D transpose through the MLIR backend (Table V).

Two kernels are generated from LEGO layouts and emitted as MLIR
(:mod:`repro.codegen.mlir`): a *naive* transpose whose global store is
uncoalesced, and an *smem* variant that stages each tile through a skewed
shared-memory layout so both global accesses are coalesced.  The same pair
exists in the NVIDIA CUDA SDK sample, which is the paper's baseline; the
reproduction compares throughput (GB/s) of the two code generators on the
analytic device model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen.mlir import MlirKernel, generate_transpose_module
from ..gpusim import A100_80GB, DeviceSpec, KernelCost, estimate_time
from ..mlir import run_gpu_kernel

__all__ = [
    "TransposeConfig",
    "generate_transpose",
    "run_transpose",
    "transpose_check_reference",
    "transpose_check_case",
    "transpose_perf_case",
    "transpose_time",
    "transpose_throughput",
    "transpose_table",
    "app_spec",
]


def transpose_check_reference(config, inputs) -> np.ndarray:
    """Ground truth: the plain NumPy transpose."""
    return np.ascontiguousarray(np.asarray(inputs["matrix"]).T)


def transpose_check_case(config, rng):
    """A small full-grid transpose interpreted from the generated MLIR.

    The emitted module hard-codes the problem size in its memref types, so
    the check configuration keeps the variant/skew/tile axes and shrinks
    ``n`` to two tiles per side — the differential runner regenerates the
    kernel at this size (its ``generate_params`` projection differs from the
    sampled configuration's).  CUDA-SDK rows are evaluation-only baselines.
    """
    from .registry import CheckCase

    if config.get("generator", "lego") != "lego":
        return None
    tile = config.get("tile", 32)
    cfg = TransposeConfig(n=2 * tile, tile=tile)
    matrix = rng.standard_normal((cfg.n, cfg.n)).astype(np.float32)

    def execute(kernel, device=None):
        return run_transpose(kernel, matrix, cfg, device=device)

    return CheckCase(
        config={"n": cfg.n, "tile": tile, "variant": config.get("variant", "smem"),
                "skew": config.get("skew", 1), "generator": "lego"},
        inputs={"matrix": matrix},
        execute=execute,
    )


def transpose_perf_case(config, rng):
    """The measured-profiling case: the check problem plus extrapolation.

    Coalescing behaviour and bank conflicts are per-tile properties, so the
    check-size execution (two tiles per side) measures them exactly; the
    recorded cost extrapolates to the app's target problem by the ratio of
    tile counts.  A transpose is a single kernel launch at any size.
    """
    from .registry import PerfCase

    case = transpose_check_case(config, rng)
    if case is None:
        return None
    target_n = config.get("n", 2048)
    case_blocks = (case.config["n"] // case.config["tile"]) ** 2
    target_blocks = (target_n // case.config["tile"]) ** 2
    return PerfCase(
        config=case.config,
        inputs=case.inputs,
        execute=case.execute,
        scale=target_blocks / case_blocks,
        launches=1,
        target_config={**case.config, "n": target_n},
    )


@dataclass(frozen=True)
class TransposeConfig:
    """One transpose problem: an ``n x n`` float32 matrix in ``tile`` tiles."""

    n: int
    tile: int = 32

    def grid(self) -> tuple[int, int, int]:
        return (self.n // self.tile, self.n // self.tile, 1)

    def block(self) -> tuple[int, int, int]:
        return (self.tile, self.tile, 1)


def generate_transpose(config: TransposeConfig, variant: str = "smem",
                       skew: bool = True) -> MlirKernel:
    """Generate the MLIR module for one variant (``naive`` or ``smem``).

    ``skew`` selects the bank-conflict-free skewed shared-memory layout (the
    paper's choice); without it the shared tile is plain row-major.
    """
    return generate_transpose_module(config.n, config.tile, variant, skew=skew)


def run_transpose(kernel: MlirKernel, matrix: np.ndarray, config: TransposeConfig,
                  sample_blocks: int | None = None, device: DeviceSpec | None = None):
    """Interpret the generated MLIR kernel; returns ``(transposed, launch result)``.

    ``device`` sets the warp width / sector granularity the trace records at.
    """
    source = matrix.astype(np.float32).reshape(-1).copy()
    destination = np.zeros_like(source)
    result = run_gpu_kernel(
        kernel.module,
        kernel.kernel_names[0],
        grid=config.grid(),
        block=config.block(),
        arguments=[source, destination],
        sample_blocks=sample_blocks,
        device=device,
    )
    return destination.reshape(config.n, config.n), result


def transpose_time(
    config: TransposeConfig,
    variant: str = "smem",
    generator: str = "lego",
    skew: bool = True,
    device: DeviceSpec = A100_80GB,
) -> float:
    """Estimated transpose time in seconds for one configuration.

    The naive variant's strided global store touches a full 32-byte sector
    per element, an 8x inflation for float32; the staged variant is fully
    coalesced.  Staging without the skewed shared-memory layout
    (``skew=False``) serialises the transposed read into ``tile``-way bank
    conflicts, which is the knob the layout autotuner sweeps.  The LEGO-MLIR
    path emits flat, pre-simplified linear indices which avoid a small amount
    of per-access address arithmetic compared with the CUDA SDK baseline,
    mirroring the slight edge Table V reports.
    """
    n = config.n
    element = 4.0
    smem_bytes = 0.0
    conflict_factor = 1.0
    if variant == "naive":
        moved_bytes = element * n * n + 32.0 * n * n  # coalesced read + sector-per-element write
        efficiency = 0.62
    elif variant == "smem":
        moved_bytes = 2.0 * element * n * n
        # read + write turnaround on the same interface keeps measured
        # transpose throughput well below the streaming peak (the CUDA SDK
        # sample lands around a third of it on A100-class parts)
        efficiency = 0.50
        # every element passes through shared memory once in, once out; the
        # transposed read replays once per conflicting lane of the column
        smem_bytes = 2.0 * element * n * n
        if not skew:
            conflict_factor = float(min(config.tile, device.smem_banks))
    else:
        raise ValueError(f"unknown transpose variant {variant!r}")
    if generator == "lego":
        efficiency *= 1.02  # linearised accesses save a little address arithmetic
    elif generator != "cuda_sdk":
        raise ValueError(f"unknown generator {generator!r}")
    blocks = (n // config.tile) ** 2
    cost = KernelCost(
        name=f"transpose_{variant}_{generator}",
        flops=0.0,
        dram_bytes=moved_bytes,
        dram_efficiency=efficiency,
        smem_bytes=smem_bytes,
        bank_conflict_factor=conflict_factor,
        blocks=float(blocks),
        threads_per_block=float(config.tile * config.tile),
        threads=float(blocks * config.tile * config.tile),
        smem_per_block=float(config.tile * config.tile * element) if variant == "smem" else 0.0,
    )
    return estimate_time(cost, device).total


def transpose_throughput(
    config: TransposeConfig,
    variant: str = "smem",
    generator: str = "lego",
    device: DeviceSpec = A100_80GB,
) -> float:
    """Effective throughput in GB/s (useful bytes moved / estimated time)."""
    useful_bytes = 2.0 * 4.0 * config.n * config.n
    return useful_bytes / transpose_time(config, variant, generator, device=device) / 1e9


def app_spec():
    """The transpose :class:`~repro.apps.registry.AppSpec` for the autotuner.

    The space crosses the kernel structure (staged through shared memory vs
    naive), the shared-tile layout (skewed vs row-major — only meaningful
    when staging), the tile size and the code generator.  Candidates
    generate real MLIR modules through ``get_backend("mlir")`` when the
    LEGO generator is selected; the CUDA SDK rows are evaluation-only
    baselines.
    """
    from ..tune.space import Choice, SearchSpace
    from .registry import AppSpec, register_app

    n = 2048
    space = SearchSpace(
        Choice("variant", ("smem", "naive")),
        Choice("skew", (1, 0)),
        Choice("tile", (32, 16, 8, 4)),
        Choice("generator", ("lego", "cuda_sdk")),
        # the skew axis only exists for the staged variant
        constraint=lambda c: c["variant"] == "smem" or c["skew"] == 0,
    )

    def evaluate(config, device=A100_80GB):
        cfg = TransposeConfig(n=config.get("n", n), tile=config["tile"])
        return transpose_time(cfg, config["variant"], config["generator"],
                              skew=bool(config["skew"]), device=device)

    def generate(config):
        if config["generator"] != "lego":
            return None
        cfg = TransposeConfig(n=config.get("n", n), tile=config["tile"])
        return generate_transpose(cfg, config["variant"], skew=bool(config["skew"]))

    return register_app(AppSpec(
        name="transpose",
        backend="mlir",
        space=space,
        evaluate=evaluate,
        generate=generate,
        generate_params=("n", "tile", "variant", "skew", "generator"),
        reference=transpose_check_reference,
        check_case=transpose_check_case,
        perf_case=transpose_perf_case,
        # the skew axis is not part of the asserted contract: at tiles where
        # the conflict term stays under the DRAM bound the two skews tie and
        # the op-count tie-break prefers the simpler row-major tile; the
        # skewed layout's win is asserted at the paper's tile of 32
        paper_config={"variant": "smem", "generator": "lego"},
        description="MLIR transpose: staging + shared-tile layout sweep (Table V)",
    ))


def transpose_table(sizes=(2048, 4096, 8192), tile: int = 32) -> list[dict[str, float]]:
    """The Table V grid: throughput of both generators for both variants."""
    rows = []
    for n in sizes:
        config = TransposeConfig(n=n, tile=tile)
        for variant in ("naive", "smem"):
            rows.append(
                {
                    "size": n,
                    "variant": variant,
                    "cuda_sdk_gbs": transpose_throughput(config, variant, "cuda_sdk"),
                    "lego_mlir_gbs": transpose_throughput(config, variant, "lego"),
                }
            )
    return rows
