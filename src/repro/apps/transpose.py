"""2-D transpose through the MLIR backend (Table V).

Two kernels are generated from LEGO layouts and emitted as MLIR
(:mod:`repro.codegen.mlir`): a *naive* transpose whose global store is
uncoalesced, and an *smem* variant that stages each tile through a skewed
shared-memory layout so both global accesses are coalesced.  The same pair
exists in the NVIDIA CUDA SDK sample, which is the paper's baseline; the
reproduction compares throughput (GB/s) of the two code generators on the
analytic device model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen.mlir import MlirKernel, generate_transpose_module
from ..gpusim import A100_80GB, DeviceSpec, KernelCost, estimate_time
from ..mlir import run_gpu_kernel

__all__ = [
    "TransposeConfig",
    "generate_transpose",
    "run_transpose",
    "transpose_throughput",
    "transpose_table",
]


@dataclass(frozen=True)
class TransposeConfig:
    """One transpose problem: an ``n x n`` float32 matrix in ``tile`` tiles."""

    n: int
    tile: int = 32

    def grid(self) -> tuple[int, int, int]:
        return (self.n // self.tile, self.n // self.tile, 1)

    def block(self) -> tuple[int, int, int]:
        return (self.tile, self.tile, 1)


def generate_transpose(config: TransposeConfig, variant: str = "smem") -> MlirKernel:
    """Generate the MLIR module for one variant (``naive`` or ``smem``)."""
    return generate_transpose_module(config.n, config.tile, variant)


def run_transpose(kernel: MlirKernel, matrix: np.ndarray, config: TransposeConfig,
                  sample_blocks: int | None = None):
    """Interpret the generated MLIR kernel; returns ``(transposed, launch result)``."""
    source = matrix.astype(np.float32).reshape(-1).copy()
    destination = np.zeros_like(source)
    result = run_gpu_kernel(
        kernel.module,
        kernel.kernel_names[0],
        grid=config.grid(),
        block=config.block(),
        arguments=[source, destination],
        sample_blocks=sample_blocks,
    )
    return destination.reshape(config.n, config.n), result


def transpose_throughput(
    config: TransposeConfig,
    variant: str = "smem",
    generator: str = "lego",
    device: DeviceSpec = A100_80GB,
) -> float:
    """Effective throughput in GB/s (useful bytes moved / estimated time).

    The naive variant's strided global store touches a full 32-byte sector
    per element, an 8x inflation for float32; the staged variant is fully
    coalesced.  The LEGO-MLIR path emits flat, pre-simplified linear indices
    which avoid a small amount of per-access address arithmetic compared with
    the CUDA SDK baseline, mirroring the slight edge Table V reports.
    """
    n = config.n
    element = 4.0
    useful_bytes = 2.0 * element * n * n
    if variant == "naive":
        moved_bytes = element * n * n + 32.0 * n * n  # coalesced read + sector-per-element write
        efficiency = 0.62
    elif variant == "smem":
        moved_bytes = 2.0 * element * n * n
        # read + write turnaround on the same interface keeps measured
        # transpose throughput well below the streaming peak (the CUDA SDK
        # sample lands around a third of it on A100-class parts)
        efficiency = 0.50
    else:
        raise ValueError(f"unknown transpose variant {variant!r}")
    if generator == "lego":
        efficiency *= 1.02  # linearised accesses save a little address arithmetic
    elif generator != "cuda_sdk":
        raise ValueError(f"unknown generator {generator!r}")
    blocks = (n // config.tile) ** 2
    cost = KernelCost(
        name=f"transpose_{variant}_{generator}",
        flops=0.0,
        dram_bytes=moved_bytes,
        dram_efficiency=efficiency,
        blocks=float(blocks),
        threads_per_block=float(config.tile * config.tile),
        threads=float(blocks * config.tile * config.tile),
        smem_per_block=float(config.tile * config.tile * element) if variant == "smem" else 0.0,
    )
    seconds = estimate_time(cost, device).total
    return useful_bytes / seconds / 1e9


def transpose_table(sizes=(2048, 4096, 8192), tile: int = 32) -> list[dict[str, float]]:
    """The Table V grid: throughput of both generators for both variants."""
    rows = []
    for n in sizes:
        config = TransposeConfig(n=n, tile=tile)
        for variant in ("naive", "smem"):
            rows.append(
                {
                    "size": n,
                    "variant": variant,
                    "cuda_sdk_gbs": transpose_throughput(config, variant, "cuda_sdk"),
                    "lego_mlir_gbs": transpose_throughput(config, variant, "lego"),
                }
            )
    return rows
