"""Matrix multiplication through LEGO-instantiated Triton templates.

This is the paper's running example (Figures 1 and 10): the kernel template
contains ``{{ }}`` placeholders for every index expression, the thread-block
computation layout and the data layouts of ``A``/``B``/``C`` are given as
LEGO specifications, and the code generator derives the index arithmetic.

Four variants are produced by changing only the data layouts (Section V-A):
``nn`` (``A B``), ``nt`` (``A B^T``), ``tn`` (``A^T B``) and ``tt``
(``A^T B^T``); a transposed operand simply uses a ``Col`` ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen import CodegenContext, TritonKernel, generate_triton_kernel
from ..core import Col, Row, TileBy
from ..gpusim import A100_80GB, DeviceSpec, KernelCost, estimate_time
from ..gpusim.baselines import cublas_matmul_time, triton_matmul_efficiency
from ..minitriton import compile_kernel, from_device, launch, to_device
from ..symbolic import Max, Min, Var

__all__ = [
    "MATMUL_TEMPLATE",
    "REFERENCE_MATMUL_SOURCE",
    "MatmulConfig",
    "build_matmul_context",
    "generate_matmul_kernel",
    "run_matmul",
    "matmul_reference",
    "matmul_check_case",
    "matmul_cost",
    "matmul_performance",
    "reference_index_ops",
    "lego_spec_index_ops",
    "app_spec",
]


#: The LEGO-side template of Figure 1 (right): layout placeholders only.
MATMUL_TEMPLATE = '''\
@triton.jit
def matmul_kernel(a_ptr, b_ptr, c_ptr, M, N, K,
                  BM: tl.constexpr, BN: tl.constexpr, BK: tl.constexpr, GM: tl.constexpr):
    pid = tl.program_id(axis=0)
    nt_m = tl.cdiv(M, BM)
    nt_n = tl.cdiv(N, BN)
    pid_m = {{ lpid_m }}
    pid_n = {{ lpid_n }}
    accumulator = tl.zeros((BM, BN), dtype=tl.float32)
    for k in range(0, tl.cdiv(K, BK)):
        a_ptrs = a_ptr + {{ la_optr }}
        b_ptrs = b_ptr + {{ lb_optr }}
        a = tl.load(a_ptrs)
        b = tl.load(b_ptrs)
        accumulator = tl.dot(a, b, accumulator)
    c = accumulator.to(tl.float16)
    c_ptrs = c_ptr + {{ lc_optr }}
    tl.store(c_ptrs, c)
'''


#: The reference Triton kernel of Figure 1 (left): hand-written index code.
REFERENCE_MATMUL_SOURCE = '''\
@triton.jit
def triton_matmul_kernel(a_ptr, b_ptr, c_ptr, M, N, K,
                         stride_am, stride_ak, stride_bk, stride_bn, stride_cm, stride_cn,
                         BM: tl.constexpr, BN: tl.constexpr, BK: tl.constexpr, GM: tl.constexpr):
    pid = tl.program_id(axis=0)
    nt_m = tl.cdiv(M, BM)
    nt_n = tl.cdiv(N, BN)
    num_pid_in_group = GM * nt_n
    group_id = pid // num_pid_in_group
    first_pid_m = group_id * GM
    group_size_m = min(nt_m - first_pid_m, GM)
    pid_m = first_pid_m + ((pid % num_pid_in_group) % group_size_m)
    pid_n = (pid % num_pid_in_group) // group_size_m
    offs_am = pid_m * BM + tl.arange(0, BM)
    offs_bn = pid_n * BN + tl.arange(0, BN)
    offs_k = tl.arange(0, BK)
    a_ptrs = a_ptr + (offs_am[:, None] * stride_am + offs_k[None, :] * stride_ak)
    b_ptrs = b_ptr + (offs_k[:, None] * stride_bk + offs_bn[None, :] * stride_bn)
    accumulator = tl.zeros((BM, BN), dtype=tl.float32)
    for k in range(0, tl.cdiv(K, BK)):
        a = tl.load(a_ptrs)
        b = tl.load(b_ptrs)
        accumulator = tl.dot(a, b, accumulator)
        a_ptrs += BK * stride_ak
        b_ptrs += BK * stride_bk
    c = accumulator.to(tl.float16)
    offs_cm = pid_m * BM + tl.arange(0, BM)
    offs_cn = pid_n * BN + tl.arange(0, BN)
    c_ptrs = c_ptr + stride_cm * offs_cm[:, None] + stride_cn * offs_cn[None, :]
    tl.store(c_ptrs, c)
'''


_VARIANTS = {
    "nn": ("row", "row"),
    "nt": ("row", "col"),
    "tn": ("col", "row"),
    "tt": ("col", "col"),
}


@dataclass(frozen=True)
class MatmulConfig:
    """Tiling configuration of one matmul kernel instance."""

    M: int
    N: int
    K: int
    BM: int = 128
    BN: int = 128
    BK: int = 64
    GM: int = 8

    def grid(self) -> int:
        return (self.M // self.BM) * (self.N // self.BN)


def build_matmul_context(variant: str = "nn") -> CodegenContext:
    """The CodegenContext of Figure 1 (right) for the chosen operand layouts.

    The thread-block computation layout groups program ids ``GM`` at a time in
    column-major order (the green box of Figure 1); the data layouts tile the
    operands by ``(BM, BK)`` / ``(BK, BN)`` / ``(BM, BN)`` composed with a
    row-major (``Row``) or column-major (``Col``) global order.
    """
    if variant not in _VARIANTS:
        raise ValueError(f"unknown matmul variant {variant!r}; expected one of {sorted(_VARIANTS)}")
    layout_a, layout_b = _VARIANTS[variant]

    M, N, K, BM, BN, BK, GM = (Var(n) for n in ["M", "N", "K", "BM", "BN", "BK", "GM"])
    pid, nt_m, nt_n, k = Var("pid"), Var("nt_m"), Var("nt_n"), Var("k")
    pid_m, pid_n = Var("pid_m"), Var("pid_n")

    ctx = CodegenContext(name=f"matmul_{variant}")
    ctx.size(M, N, K, BM, BN, BK, GM, nt_m, nt_n)
    ctx.index(pid, nt_m * nt_n)
    ctx.index(k, K // BK)
    ctx.index(pid_m, M // BM)
    ctx.index(pid_n, N // BN)
    ctx.divisible(M, BM)
    ctx.divisible(N, BN)
    ctx.divisible(K, BK)

    # (1) thread-block computation layout (grouped, column-major at both levels)
    compute_layout = TileBy([nt_m, nt_n]).OrderBy(
        Col(Max(nt_m // GM, 1), 1), Col(Min(nt_m, GM), nt_n)
    )
    ctx.bind_inverse(["lpid_m", "lpid_n"], compute_layout, pid)

    # (2) data layouts composed with the computation layout.  Col keeps the
    # operand's logical (rows, cols) shape and reverses only the traversal
    # order (see repro.core.sugar); handing it a reversed shape happens to
    # cancel out for square operands but mis-addresses non-square ones.
    order_a = Row(M, K) if layout_a == "row" else Col(M, K)
    order_b = Row(K, N) if layout_b == "row" else Col(K, N)
    data_a = TileBy([M // BM, K // BK], [BM, BK]).OrderBy(order_a)
    data_b = TileBy([K // BK, N // BN], [BK, BN]).OrderBy(order_b)
    data_c = TileBy([M // BM, N // BN], [BM, BN]).OrderBy(Row(M, N))
    ctx.bind("la_optr", data_a[pid_m, k, :, :])
    ctx.bind("lb_optr", data_b[k, pid_n, :, :])
    ctx.bind("lc_optr", data_c[pid_m, pid_n, :, :])
    return ctx


def generate_matmul_kernel(variant: str = "nn") -> TritonKernel:
    """Instantiate the matmul template for one operand-layout variant."""
    context = build_matmul_context(variant)
    return generate_triton_kernel(f"matmul_{variant}", MATMUL_TEMPLATE, context)


def run_matmul(
    kernel: TritonKernel,
    a: np.ndarray,
    b: np.ndarray,
    config: MatmulConfig,
    variant: str = "nn",
    sample_programs: int | None = None,
    device: DeviceSpec | None = None,
):
    """Execute a generated matmul kernel on the mini-Triton interpreter.

    ``a``/``b`` are given in their logical (M, K) / (K, N) shapes; transposed
    variants store the operand in column-major order, which is what the
    corresponding ``Col`` data layout expects.  ``device`` sets the DRAM
    sector granularity the trace records at.  Returns ``(C, trace)``.
    """
    layout_a, layout_b = _VARIANTS[variant]
    a_mem = a if layout_a == "row" else np.asfortranarray(a)
    b_mem = b if layout_b == "row" else np.asfortranarray(b)
    a_flat = a_mem.T.reshape(-1) if layout_a == "col" else a_mem.reshape(-1)
    b_flat = b_mem.T.reshape(-1) if layout_b == "col" else b_mem.reshape(-1)

    a_buf = to_device(a_flat.astype(np.float16), "a")
    b_buf = to_device(b_flat.astype(np.float16), "b")
    c_buf = to_device(np.zeros(config.M * config.N, dtype=np.float16), "c")

    fn = compile_kernel(kernel.source, "matmul_kernel")
    trace = launch(
        fn,
        grid=config.grid(),
        kernel_args={
            "a_ptr": a_buf,
            "b_ptr": b_buf,
            "c_ptr": c_buf,
            "M": config.M,
            "N": config.N,
            "K": config.K,
            "BM": config.BM,
            "BN": config.BN,
            "BK": config.BK,
            "GM": config.GM,
        },
        sample_programs=sample_programs,
        sector_bytes=device.dram_sector_bytes if device is not None else 32,
    )
    c = from_device(c_buf, (config.M, config.N))
    return c, trace


def matmul_reference(config, inputs) -> np.ndarray:
    """NumPy ground truth mirroring the kernel's arithmetic contract.

    Inputs are FP16, the accumulator is FP32 and the result is cast back to
    FP16 — the same dtype path the generated kernel takes, so the
    differential check compares like against like.
    """
    a = np.asarray(inputs["a"]).astype(np.float32)
    b = np.asarray(inputs["b"]).astype(np.float32)
    return (a @ b).astype(np.float16)


def matmul_check_case(config, rng):
    """A small full-launch matmul problem for the differential runner.

    The kernel text depends only on the operand-layout variant, so the check
    shrinks the problem and tiling to a 2x2 grid of 16x16 tiles the
    mini-Triton interpreter executes in milliseconds while keeping the
    sampled variant.
    """
    from .registry import CheckCase

    variant = config.get("variant", "nn")
    cfg = MatmulConfig(M=32, N=32, K=16, BM=16, BN=16, BK=8, GM=2)
    a = rng.standard_normal((cfg.M, cfg.K)).astype(np.float16)
    b = rng.standard_normal((cfg.K, cfg.N)).astype(np.float16)

    def execute(kernel, device=None):
        return run_matmul(kernel, a, b, cfg, variant, device=device)

    return CheckCase(
        config={"variant": variant, "M": cfg.M, "N": cfg.N, "K": cfg.K,
                "BM": cfg.BM, "BN": cfg.BN, "BK": cfg.BK, "GM": cfg.GM},
        inputs={"a": a, "b": b},
        execute=execute,
    )


def matmul_cost(
    config: MatmulConfig,
    implementation: str = "lego",
    *,
    threads_per_block: int = 256,
    stages: int = 1,
) -> KernelCost:
    """The analytic :class:`~repro.gpusim.KernelCost` of one GEMM launch.

    ``threads_per_block`` follows the ``num_warps`` tuning axis
    (``32 * num_warps``); ``stages`` is software pipelining depth — each
    extra stage double-buffers the shared-memory tiles (``smem_per_block``
    grows, squeezing resident blocks) in exchange for a modestly better
    effective DRAM efficiency from prefetch overlap.  The defaults
    (``256`` threads, single stage) reproduce the historical closed form
    exactly, which is what the figure harnesses call.
    """
    if implementation not in ("lego", "triton"):
        raise ValueError(f"unknown implementation {implementation!r}")
    m, n, k = config.M, config.N, config.K
    element = 2  # fp16
    tiles_m, tiles_n = m // config.BM, n // config.BN
    # Each operand tile is read once per tile of the other dimension inside a
    # GM-wide group; L2 captures the reuse within the group, so DRAM traffic
    # is roughly (tiles_n / GM) passes over A plus (tiles_m / GM) passes over
    # B plus one store of C.  The kernel is compute-bound at the evaluated
    # sizes, so this term only matters for the smallest configuration.
    passes_a = max(1.0, tiles_n / config.GM)
    passes_b = max(1.0, tiles_m / config.GM)
    dram_bytes = float(element) * (passes_a * m * k + passes_b * k * n + m * n)
    stages = max(1, int(stages))
    dram_efficiency = 0.85 if stages == 1 else min(0.92, 0.85 + 0.02 * (stages - 1))
    return KernelCost(
        name=f"matmul_{implementation}",
        flops=2.0 * m * n * k,
        dtype="fp16",
        tensor_core=True,
        dram_bytes=max(dram_bytes, float(element) * (m * k + k * n + m * n)),
        compute_efficiency=triton_matmul_efficiency(m, n, k),
        dram_efficiency=dram_efficiency,
        blocks=float(tiles_m * tiles_n),
        threads_per_block=float(threads_per_block),
        threads=float(tiles_m * tiles_n * threads_per_block),
        smem_per_block=float((config.BM + config.BN) * config.BK * element * stages),
    )


def matmul_performance(
    config: MatmulConfig,
    implementation: str = "lego",
    device: DeviceSpec = A100_80GB,
    *,
    threads_per_block: int = 256,
    stages: int = 1,
) -> float:
    """Estimated FP16 GEMM time in seconds for one implementation.

    ``lego`` and ``triton`` map to the same tiling (the generated kernel *is*
    a Triton kernel), so they share the efficiency curve; ``cublas`` uses the
    vendor-library curve (the PyTorch dispatch path in Figure 11).
    """
    if implementation == "cublas":
        return cublas_matmul_time(config.M, config.N, config.K, device)
    cost = matmul_cost(config, implementation,
                       threads_per_block=threads_per_block, stages=stages)
    return estimate_time(cost, device).total


def app_spec():
    """The matmul :class:`~repro.apps.registry.AppSpec` for the autotuner.

    The sweep covers operand-layout variants and the tiling configuration at
    the Figure 11 mid-size problem (4096^3); the paper's runs use the Triton
    tutorial tiling ``BM = BN = 128, BK = 64, GM = 8`` (listed first on each
    axis so performance-model ties resolve toward it).  Beyond the paper's
    grid the space carries the launch-shape axes a real Triton sweep tunes —
    ``num_warps`` (threads per block) and ``stages`` (pipelining depth) —
    taking the valid space past 10^4 points; the constraint prunes
    shared-memory overflows and degenerate work-per-thread splits.
    """
    from ..gpusim import cost_features
    from ..tune.space import Choice, SearchSpace
    from .registry import AppSpec, register_app

    n = 4096
    smem_limit = A100_80GB.smem_per_sm_bytes

    def valid(config) -> bool:
        # tile buffers (double-buffered per pipeline stage) must fit an SM's
        # shared memory, and each of the 32*num_warps threads must own
        # between 1 and 256 output elements of the BM x BN accumulator
        smem = (config["BM"] + config["BN"]) * config["BK"] * 2 * config["stages"]
        if smem > smem_limit:
            return False
        threads = 32 * config["num_warps"]
        per_thread = config["BM"] * config["BN"] / threads
        return 1 <= per_thread <= 256

    space = SearchSpace(
        Choice("variant", ("nn", "nt", "tn", "tt")),
        Choice("BM", (128, 64, 256, 32, 16)),
        Choice("BN", (128, 64, 256, 32, 16)),
        Choice("BK", (64, 32, 16, 128)),
        Choice("GM", (8, 4, 16, 1, 2)),
        Choice("num_warps", (8, 4, 16, 2, 1)),
        Choice("stages", (1, 2, 3)),
        constraint=valid,
    )

    def evaluate(config, device=A100_80GB):
        # the figure harnesses and the measured profiler may override the
        # problem sizes (and device); the axes default to the Figure 11 mid-size
        cfg = MatmulConfig(config.get("M", n), config.get("N", n), config.get("K", n),
                           BM=config["BM"], BN=config["BN"],
                           BK=config["BK"], GM=config["GM"])
        cost = matmul_cost(
            cfg, "lego",
            threads_per_block=32 * config.get("num_warps", 8),
            stages=config.get("stages", 1),
        )
        breakdown = estimate_time(cost, device)
        return {"time_seconds": breakdown.total, **cost_features(cost, breakdown)}

    return register_app(AppSpec(
        name="matmul",
        backend="triton",
        space=space,
        evaluate=evaluate,
        generate=lambda config: generate_matmul_kernel(config["variant"]),
        generate_params=("variant",),
        reference=matmul_reference,
        check_case=matmul_check_case,
        paper_config={"BM": 128, "BN": 128, "BK": 64, "GM": 8},
        description="FP16 matmul: operand-layout variants x Triton tutorial tiling",
    ))


def _count_source_ops(source: str, markers: tuple[str, ...]) -> int:
    """Count arithmetic operators on the index-computation lines of a kernel."""
    total = 0
    for line in source.splitlines():
        stripped = line.strip()
        if not any(marker in stripped for marker in markers):
            continue
        for token in ("+", "-", "*", "//", "%"):
            if token == "//":
                total += stripped.count("//")
            elif token == "*":
                total += stripped.count("*") - 2 * stripped.count("**")
            elif token == "-":
                total += stripped.count(" - ")
            elif token == "+":
                total += stripped.count("+") - stripped.count("+=")
                total += stripped.count("+=")
            else:
                total += stripped.count(token)
    return total


def reference_index_ops() -> int:
    """Arithmetic ops the user writes for indexing in the reference kernel (Table IV)."""
    markers = ("pid_", "offs_", "_ptrs", "group", "first_pid", "num_pid")
    source = REFERENCE_MATMUL_SOURCE.replace("//", "/")
    return _count_source_ops(source, markers)


def lego_spec_index_ops(variant: str = "nn") -> int:
    """Arithmetic ops the user writes in the LEGO specification (Table IV)."""
    layout_a, layout_b = _VARIANTS[variant]
    spec = (
        "CL = TileBy([nt_m, nt_n]).OrderBy(Col(max(nt_m//GM,1), 1), Col(min(nt_m,GM), nt_n))\n"
        "DL_a = TileBy([M//BM, K//BK], [BM, BK]).OrderBy({a}(M, K))\n"
        "DL_b = TileBy([K//BK, N//BN], [BK, BN]).OrderBy({b}(K, N))\n"
        "DL_c = TileBy([M//BM, N//BN], [BM, BN]).OrderBy(Row(M, N))\n"
    ).format(a="Row" if layout_a == "row" else "Col", b="Row" if layout_b == "row" else "Col")
    total = 0
    for line in spec.splitlines():
        total += line.count("//") + line.count("max(") + line.count("min(")
    return total
