"""LayerNorm forward and backward through LEGO-instantiated Triton templates.

Forward: one program per row computes the mean and variance of its row of
``x``, normalises, scales by ``w`` and shifts by ``b``.  Backward: one
program per row recomputes the normalised activations and produces ``dx``
for its row plus its row's contribution to the weight/bias gradients (the
reference Triton tutorial accumulates those in a second reduction kernel; we
reproduce only the row-parallel pass the paper benchmarks).

All index arithmetic — the row offsets into ``x`` / ``dy`` / ``dx`` and the
column offsets into ``w`` / ``b`` — comes from LEGO ``Row`` layouts, so the
user-written specification contains no explicit strides (Table IV's
LayerNorm rows: 6 -> 1 forward, 4 -> 0 backward).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen import CodegenContext, TritonKernel, generate_triton_kernel
from ..core import GroupBy, Row
from ..gpusim import A100_80GB, DeviceSpec, KernelCost, estimate_time
from ..gpusim.baselines import pytorch_elementwise_time
from ..minitriton import compile_kernel, from_device, launch, to_device
from ..symbolic import Var

__all__ = [
    "LAYERNORM_FWD_TEMPLATE",
    "LAYERNORM_BWD_TEMPLATE",
    "LayerNormConfig",
    "build_layernorm_context",
    "generate_layernorm_forward",
    "generate_layernorm_backward",
    "layernorm_reference",
    "layernorm_backward_reference",
    "layernorm_check_reference",
    "layernorm_check_case",
    "run_layernorm_forward",
    "run_layernorm_backward",
    "layernorm_performance",
    "app_spec",
]


LAYERNORM_FWD_TEMPLATE = '''\
@triton.jit
def layernorm_fwd_kernel(x_ptr, w_ptr, b_ptr, y_ptr, M, N, eps, BN: tl.constexpr):
    row = tl.program_id(axis=0)
    x_ptrs = x_ptr + {{ row_offsets }}
    x = tl.load(x_ptrs)
    mean = tl.sum(x, axis=0) / N
    centered = x - mean
    var = tl.sum(centered * centered, axis=0) / N
    rstd = tl.rsqrt(var + eps)
    w = tl.load(w_ptr + {{ col_offsets }})
    b = tl.load(b_ptr + {{ col_offsets }})
    y = centered * rstd * w + b
    tl.store(y_ptr + {{ row_offsets }}, y)
'''


LAYERNORM_BWD_TEMPLATE = '''\
@triton.jit
def layernorm_bwd_kernel(dy_ptr, x_ptr, w_ptr, dx_ptr, M, N, eps, BN: tl.constexpr):
    row = tl.program_id(axis=0)
    x = tl.load(x_ptr + {{ row_offsets }})
    dy = tl.load(dy_ptr + {{ row_offsets }})
    w = tl.load(w_ptr + {{ col_offsets }})
    mean = tl.sum(x, axis=0) / N
    centered = x - mean
    var = tl.sum(centered * centered, axis=0) / N
    rstd = tl.rsqrt(var + eps)
    xhat = centered * rstd
    wdy = w * dy
    c1 = tl.sum(xhat * wdy, axis=0) / N
    c2 = tl.sum(wdy, axis=0) / N
    dx = (wdy - (xhat * c1 + c2)) * rstd
    tl.store(dx_ptr + {{ row_offsets }}, dx)
'''


@dataclass(frozen=True)
class LayerNormConfig:
    """Problem shape of one LayerNorm launch (one program per row)."""

    M: int
    N: int
    eps: float = 1e-5

    def grid(self) -> int:
        return self.M


def build_layernorm_context(name: str = "layernorm") -> CodegenContext:
    """Row offsets from ``Row(M, N)`` and column offsets from ``Row(N)``."""
    M, N = Var("M"), Var("N")
    row = Var("row")
    ctx = CodegenContext(name=name)
    ctx.size(M, N)
    ctx.index(row, M)
    rows = GroupBy([M, N]).OrderBy(Row(M, N))
    cols = GroupBy([N]).OrderBy(Row(N))
    ctx.bind("row_offsets", rows[row, :])
    ctx.bind("col_offsets", cols[:])
    return ctx


def generate_layernorm_forward() -> TritonKernel:
    return generate_triton_kernel(
        "layernorm_fwd", LAYERNORM_FWD_TEMPLATE, build_layernorm_context("layernorm_fwd")
    )


def generate_layernorm_backward() -> TritonKernel:
    return generate_triton_kernel(
        "layernorm_bwd", LAYERNORM_BWD_TEMPLATE, build_layernorm_context("layernorm_bwd")
    )


def layernorm_reference(x: np.ndarray, w: np.ndarray, b: np.ndarray, eps: float = 1e-5) -> np.ndarray:
    x = x.astype(np.float32)
    mean = x.mean(axis=1, keepdims=True)
    var = ((x - mean) ** 2).mean(axis=1, keepdims=True)
    return (x - mean) / np.sqrt(var + eps) * w + b


def layernorm_backward_reference(
    dy: np.ndarray, x: np.ndarray, w: np.ndarray, eps: float = 1e-5
) -> np.ndarray:
    x = x.astype(np.float32)
    dy = dy.astype(np.float32)
    n = x.shape[1]
    mean = x.mean(axis=1, keepdims=True)
    var = ((x - mean) ** 2).mean(axis=1, keepdims=True)
    rstd = 1.0 / np.sqrt(var + eps)
    xhat = (x - mean) * rstd
    wdy = w * dy
    c1 = (xhat * wdy).sum(axis=1, keepdims=True) / n
    c2 = wdy.sum(axis=1, keepdims=True) / n
    return (wdy - (xhat * c1 + c2)) * rstd


def run_layernorm_forward(kernel: TritonKernel, x, w, b, eps: float = 1e-5, sample_programs=None,
                          device: DeviceSpec | None = None):
    m, n = x.shape
    x_buf = to_device(x.astype(np.float32).reshape(-1), "x")
    w_buf = to_device(w.astype(np.float32), "w")
    b_buf = to_device(b.astype(np.float32), "b")
    y_buf = to_device(np.zeros(m * n, dtype=np.float32), "y")
    fn = compile_kernel(kernel.source, "layernorm_fwd_kernel")
    trace = launch(
        fn,
        grid=m,
        kernel_args={
            "x_ptr": x_buf, "w_ptr": w_buf, "b_ptr": b_buf, "y_ptr": y_buf,
            "M": m, "N": n, "eps": eps, "BN": n,
        },
        sample_programs=sample_programs,
        sector_bytes=device.dram_sector_bytes if device is not None else 32,
    )
    return from_device(y_buf, (m, n)), trace


def run_layernorm_backward(kernel: TritonKernel, dy, x, w, eps: float = 1e-5, sample_programs=None,
                           device: DeviceSpec | None = None):
    m, n = x.shape
    dy_buf = to_device(dy.astype(np.float32).reshape(-1), "dy")
    x_buf = to_device(x.astype(np.float32).reshape(-1), "x")
    w_buf = to_device(w.astype(np.float32), "w")
    dx_buf = to_device(np.zeros(m * n, dtype=np.float32), "dx")
    fn = compile_kernel(kernel.source, "layernorm_bwd_kernel")
    trace = launch(
        fn,
        grid=m,
        kernel_args={
            "dy_ptr": dy_buf, "x_ptr": x_buf, "w_ptr": w_buf, "dx_ptr": dx_buf,
            "M": m, "N": n, "eps": eps, "BN": n,
        },
        sample_programs=sample_programs,
        sector_bytes=device.dram_sector_bytes if device is not None else 32,
    )
    return from_device(dx_buf, (m, n)), trace


def layernorm_check_reference(config, inputs) -> np.ndarray:
    """NumPy ground truth for either direction of the check case."""
    eps = config.get("eps", 1e-5)
    if config.get("direction", "forward") == "forward":
        return layernorm_reference(inputs["x"], inputs["w"], inputs["b"], eps)
    return layernorm_backward_reference(inputs["dy"], inputs["x"], inputs["w"], eps)


def layernorm_check_case(config, rng):
    """A small full-launch LayerNorm (forward or backward) per the config."""
    from .registry import CheckCase

    if config.get("implementation", "lego") != "lego":
        return None  # eager baselines are evaluation-only
    direction = config.get("direction", "forward")
    m, n = 8, 16
    x = rng.standard_normal((m, n)).astype(np.float32)
    w = rng.standard_normal(n).astype(np.float32)
    resolved = {"implementation": "lego", "direction": direction, "M": m, "N": n}
    if direction == "forward":
        b = rng.standard_normal(n).astype(np.float32)
        inputs = {"x": x, "w": w, "b": b}

        def execute(kernel, device=None):
            return run_layernorm_forward(kernel, x, w, b, device=device)
    else:
        dy = rng.standard_normal((m, n)).astype(np.float32)
        inputs = {"dy": dy, "x": x, "w": w}

        def execute(kernel, device=None):
            return run_layernorm_backward(kernel, dy, x, w, device=device)

    return CheckCase(config=resolved, inputs=inputs, execute=execute)


def layernorm_performance(
    config: LayerNormConfig,
    implementation: str = "lego",
    direction: str = "forward",
    device: DeviceSpec = A100_80GB,
) -> float:
    """Estimated LayerNorm time.

    The fused LEGO/Triton kernel reads its inputs once and writes once; the
    eager baseline performs separate mean/var reduction and normalisation
    kernels (forward) or several reduction passes (backward); LEGO is
    modelled marginally ahead of reference Triton in the forward direction
    because the reference tutorial's explicit-step loop generates less
    efficient code (the effect reported in Section V-A).
    """
    elements = config.M * config.N
    if direction not in ("forward", "backward"):
        raise ValueError(f"unknown direction {direction!r}")
    passes_in = 2 if direction == "forward" else 3
    if implementation == "pytorch":
        launches = 2 if direction == "forward" else 3
        return pytorch_elementwise_time(
            elements, device, reads=passes_in + 1, writes=1, kernel_launches=launches
        )
    if implementation not in ("lego", "triton"):
        raise ValueError(f"unknown implementation {implementation!r}")
    efficiency = 0.88
    if direction == "forward" and implementation == "triton":
        efficiency = 0.80  # the tutorial's explicit-step loop (Section V-A)
    cost = KernelCost(
        name=f"layernorm_{direction}_{implementation}",
        flops=8.0 * elements,
        dtype="fp32",
        dram_bytes=float(passes_in + 1) * 4.0 * elements,
        dram_efficiency=efficiency,
        blocks=float(config.M),
        threads_per_block=min(1024, config.N),
        threads=float(config.M * min(1024, config.N)),
    )
    return estimate_time(cost, device).total


def app_spec():
    """The LayerNorm :class:`~repro.apps.registry.AppSpec` for the autotuner.

    As for softmax the axis is the execution strategy per direction: the
    fused row-parallel kernel vs the eager framework path (Figure 11).
    """
    from ..tune.space import Choice, SearchSpace
    from .registry import AppSpec, register_app

    n = 4096
    space = SearchSpace(
        Choice("implementation", ("lego", "triton", "pytorch")),
        Choice("direction", ("forward", "backward")),
    )

    def evaluate(config, device=A100_80GB):
        # sizes and device may be overridden (figure harnesses, measured profiler)
        cfg = LayerNormConfig(M=config.get("M", n), N=config.get("N", n))
        return layernorm_performance(cfg, config["implementation"], config["direction"],
                                     device=device)

    def generate(config):
        if config["implementation"] != "lego":
            return None
        if config["direction"] == "forward":
            return generate_layernorm_forward()
        return generate_layernorm_backward()

    return register_app(AppSpec(
        name="layernorm",
        backend="triton",
        space=space,
        evaluate=evaluate,
        generate=generate,
        generate_params=("implementation", "direction"),
        reference=layernorm_check_reference,
        check_case=layernorm_check_case,
        paper_config={"implementation": "lego"},
        description="Fused LayerNorm vs eager framework (Figure 11)",
    ))
