"""Row-wise fused softmax through a LEGO-instantiated Triton template.

One program handles one row of the ``(M, N)`` input: it loads the row,
subtracts the running maximum, exponentiates, normalises and stores — a
single fused pass, which is what makes the Triton/LEGO kernel beat an eager
framework that launches one kernel per primitive.  The only index arithmetic
in the kernel is the row offset, which LEGO derives from a ``Row`` data
layout; the LEGO specification therefore contains *zero* user-written
arithmetic operations (Table IV's ``4 -> 0`` row).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..codegen import CodegenContext, TritonKernel, generate_triton_kernel
from ..core import GroupBy, Row
from ..gpusim import A100_80GB, DeviceSpec, KernelCost, estimate_time
from ..gpusim.baselines import pytorch_elementwise_time
from ..minitriton import compile_kernel, from_device, launch, to_device
from ..symbolic import Var

__all__ = [
    "SOFTMAX_TEMPLATE",
    "REFERENCE_SOFTMAX_SOURCE",
    "SoftmaxConfig",
    "build_softmax_context",
    "generate_softmax_kernel",
    "run_softmax",
    "softmax_reference",
    "softmax_check_case",
    "softmax_performance",
    "app_spec",
]


def softmax_check_case(config, rng):
    """A small full-launch softmax for the differential runner.

    Only the fused LEGO kernel is executable on the substrate; the eager
    baselines are evaluation-only rows, so their configurations are skipped.
    """
    from .registry import CheckCase

    if config.get("implementation", "lego") != "lego":
        return None
    m, n = 8, 16
    x = rng.standard_normal((m, n)).astype(np.float32)

    def execute(kernel, device=None):
        return run_softmax(kernel, x, device=device)

    return CheckCase(
        config={"implementation": "lego", "M": m, "N": n},
        inputs={"x": x},
        execute=execute,
    )


def app_spec():
    """The softmax :class:`~repro.apps.registry.AppSpec` for the autotuner.

    Softmax has no tiling to tune — the interesting axis is the execution
    strategy (the fused LEGO/Triton kernel vs the eager multi-kernel
    framework path), which is what Figure 11 compares.
    """
    from ..tune.space import Choice, SearchSpace
    from .registry import AppSpec, register_app

    n = 4096
    space = SearchSpace(Choice("implementation", ("lego", "triton", "pytorch")))

    return register_app(AppSpec(
        name="softmax",
        backend="triton",
        space=space,
        # sizes and device may be overridden (figure harnesses, measured profiler)
        evaluate=lambda config, device=A100_80GB: softmax_performance(
            SoftmaxConfig(M=config.get("M", n), N=config.get("N", n)),
            config["implementation"],
            device=device,
        ),
        generate=lambda config: generate_softmax_kernel() if config["implementation"] == "lego" else None,
        generate_params=("implementation",),
        reference=lambda config, inputs: softmax_reference(inputs["x"]),
        check_case=softmax_check_case,
        paper_config={"implementation": "lego"},
        description="Fused softmax vs eager framework (Figure 11)",
    ))


SOFTMAX_TEMPLATE = '''\
@triton.jit
def softmax_kernel(x_ptr, y_ptr, M, N, BN: tl.constexpr):
    row = tl.program_id(axis=0)
    x_ptrs = x_ptr + {{ row_offsets }}
    x = tl.load(x_ptrs)
    x = x - tl.max(x, axis=0)
    numerator = tl.exp(x)
    denominator = tl.sum(numerator, axis=0)
    y = numerator / denominator
    y_ptrs = y_ptr + {{ row_offsets }}
    tl.store(y_ptrs, y)
'''


#: The reference Triton tutorial kernel writes the row/column arithmetic by hand.
REFERENCE_SOFTMAX_SOURCE = '''\
@triton.jit
def softmax_kernel(x_ptr, y_ptr, M, N, stride_m, BN: tl.constexpr):
    row = tl.program_id(axis=0)
    col_offsets = tl.arange(0, BN)
    x_ptrs = x_ptr + row * stride_m + col_offsets
    x = tl.load(x_ptrs)
    x = x - tl.max(x, axis=0)
    numerator = tl.exp(x)
    denominator = tl.sum(numerator, axis=0)
    y = numerator / denominator
    y_ptrs = y_ptr + row * stride_m + col_offsets
    tl.store(y_ptrs, y)
'''


@dataclass(frozen=True)
class SoftmaxConfig:
    """Problem shape of one softmax launch (one program per row)."""

    M: int
    N: int

    def grid(self) -> int:
        return self.M


def build_softmax_context(config: SoftmaxConfig | None = None) -> CodegenContext:
    """Bind the row-offset expression derived from a ``Row(M, N)`` layout."""
    M, N = Var("M"), Var("N")
    row = Var("row")
    ctx = CodegenContext(name="softmax")
    ctx.size(M, N)
    ctx.index(row, M)
    data = GroupBy([M, N]).OrderBy(Row(M, N))
    ctx.bind("row_offsets", data[row, :])
    return ctx


def generate_softmax_kernel() -> TritonKernel:
    return generate_triton_kernel("softmax", SOFTMAX_TEMPLATE, build_softmax_context())


def softmax_reference(x: np.ndarray) -> np.ndarray:
    """NumPy row-wise softmax (float32 accumulation)."""
    x = x.astype(np.float32)
    shifted = x - x.max(axis=1, keepdims=True)
    e = np.exp(shifted)
    return e / e.sum(axis=1, keepdims=True)


def run_softmax(kernel: TritonKernel, x: np.ndarray, sample_programs: int | None = None,
                device: DeviceSpec | None = None):
    """Execute the generated kernel on the mini-Triton interpreter."""
    m, n = x.shape
    x_buf = to_device(x.astype(np.float32).reshape(-1), "x")
    y_buf = to_device(np.zeros(m * n, dtype=np.float32), "y")
    fn = compile_kernel(kernel.source, "softmax_kernel")
    trace = launch(
        fn,
        grid=m,
        kernel_args={"x_ptr": x_buf, "y_ptr": y_buf, "M": m, "N": n, "BN": n},
        sample_programs=sample_programs,
        sector_bytes=device.dram_sector_bytes if device is not None else 32,
    )
    return from_device(y_buf, (m, n)), trace


def softmax_performance(
    config: SoftmaxConfig,
    implementation: str = "lego",
    device: DeviceSpec = A100_80GB,
) -> float:
    """Estimated softmax time: fused single pass vs. eager multi-kernel."""
    elements = config.M * config.N
    if implementation == "pytorch":
        # eager softmax: max + subtract/exp + sum + divide (partially fused)
        return pytorch_elementwise_time(elements, device, reads=2, writes=1, kernel_launches=2)
    if implementation not in ("lego", "triton"):
        raise ValueError(f"unknown implementation {implementation!r}")
    cost = KernelCost(
        name=f"softmax_{implementation}",
        flops=5.0 * elements,
        dtype="fp32",
        dram_bytes=2.0 * 4.0 * elements,
        dram_efficiency=0.88,
        blocks=float(config.M),
        threads_per_block=min(1024, config.N),
        threads=float(config.M * min(1024, config.N)),
    )
    return estimate_time(cost, device).total
