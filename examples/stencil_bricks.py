"""3-D stencils: switch the grid from row-major to the brick layout.

Shows the Table I brick layout expression, checks that the stencil kernel
produces identical results on both layouts (the kernel indexes the grid
logically and never changes), and prints the estimated array-vs-brick
speedups of Figure 12c together with the roofline points of Figure 13b.

Run with ``python examples/stencil_bricks.py``.
"""

import numpy as np

from repro.apps import stencil
from repro.bench.roofline import stencil_roofline


def main() -> None:
    grid = np.random.default_rng(0).standard_normal((16, 16, 16)).astype(np.float32)
    spec = stencil.STENCILS[0]  # star-7pt
    layout = stencil.brick_layout(16, 4)
    print("Brick layout (16^3 grid, 4^3 bricks):", layout)

    reference = stencil.stencil_reference(grid, spec)
    out_array, _ = stencil.run_stencil(grid, spec, layout=None, brick=4)
    out_brick, _ = stencil.run_stencil(grid, spec, layout=layout, brick=4)
    print("array layout matches reference:", np.allclose(out_array, reference, atol=1e-4))
    print("brick layout matches reference:", np.allclose(out_brick, reference, atol=1e-4))

    print("\nEstimated brick-over-array speedups at 512^3 (Figure 12c):")
    for s in stencil.STENCILS:
        row = stencil.stencil_speedup(s, n=512, brick=8)
        print(f"  {s.name:<11s} {row['speedup']:.2f}x")

    print("\nRoofline points (Figure 13b):")
    for row in stencil_roofline(512):
        print(
            f"  {row['kernel']:<22s} AI={row['arithmetic_intensity']:.2f} flop/B, "
            f"achieved {row['achieved_gflops']:.0f} GFLOP/s (roof {row['memory_roof_gflops']:.0f})"
        )


if __name__ == "__main__":
    main()
