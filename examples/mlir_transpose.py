"""MLIR integration: generate, verify, print and execute the transpose kernels.

Generates the naive and shared-memory-staged 2-D transpose modules from LEGO
layouts (including the skewed shared-memory layout that removes bank
conflicts), prints the MLIR, interprets both kernels for correctness, and
reports the Table V throughput comparison against the CUDA SDK baseline.

Run with ``python examples/mlir_transpose.py``.
"""

import numpy as np

from repro.apps import transpose


def main() -> None:
    config = transpose.TransposeConfig(n=64, tile=16)
    matrix = np.arange(64 * 64, dtype=np.float32).reshape(64, 64)

    for variant in ("naive", "smem"):
        kernel = transpose.generate_transpose(config, variant)
        result, launch = transpose.run_transpose(kernel, matrix, config)
        print(f"== {variant} variant (generated in {kernel.generation_seconds:.3f} s)")
        print("correct:", np.array_equal(result, matrix.T))
        print(f"global store transactions: {launch.store_transactions:.0f}")
        print(f"shared-memory conflict factor: {launch.bank_conflict_factor:.2f}")
        print()

    print("Generated MLIR for the staged variant:\n")
    print(transpose.generate_transpose(config, "smem").text)

    print("\nTable V reproduction (GB/s):")
    for row in transpose.transpose_table():
        print(
            f"  {row['size']:>5d} {row['variant']:<6s} "
            f"CUDA-SDK {row['cuda_sdk_gbs']:7.1f}   LEGO-MLIR {row['lego_mlir_gbs']:7.1f}"
        )


if __name__ == "__main__":
    main()
