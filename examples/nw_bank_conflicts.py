"""Needleman-Wunsch: remove shared-memory bank conflicts by changing one layout.

Runs the blocked NW kernel on the mini-CUDA substrate twice — once with the
original row-major shared buffer and once with the paper's anti-diagonal
layout (Figure 7 / Equation 2) — verifies both against the sequential dynamic
program, and reports the measured bank-conflict factors plus the estimated
end-to-end speedup for realistic problem sizes (Figure 12a).

Run with ``python examples/nw_bank_conflicts.py``.
"""

import numpy as np

from repro.apps import nw


def main() -> None:
    config = nw.NwConfig(n=128, block=16, penalty=10)
    rng = np.random.default_rng(0)
    reference = rng.integers(-4, 5, size=(config.n, config.n)).astype(np.int32)
    gold = nw.nw_reference(reference, config.penalty)

    score_row, trace_row = nw.run_nw_blocked(reference, config, layout=None)
    antidiag = nw.antidiagonal_buffer_layout(config.block)
    score_anti, trace_anti = nw.run_nw_blocked(reference, config, layout=antidiag)

    print("correct (row-major buffer):   ", np.array_equal(score_row, gold))
    print("correct (anti-diagonal buffer):", np.array_equal(score_anti, gold))
    print(f"bank-conflict factor, row-major:     {trace_row.bank_conflict_factor:.2f}")
    print(f"bank-conflict factor, anti-diagonal: {trace_anti.bank_conflict_factor:.2f}")

    print("\nEstimated end-to-end speedup from the layout change (Figure 12a):")
    for n in (2048, 4096, 8192, 16384):
        result = nw.nw_speedup(n, block=16, trace_n=128)
        print(f"  n = {n:>6d}: {result['speedup']:.2f}x")

    print("\nCUDA accessor wrapper LEGO emits for the original Rodinia kernel:\n")
    print(nw.generate_nw_wrapper(config.block))


if __name__ == "__main__":
    main()
