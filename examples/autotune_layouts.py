"""Autotune the paper's layout sweeps with one reusable search.

The paper's evaluation hand-drives a sweep per figure: LUD block sizes and
coarsening factors (Figure 12b), NW shared-buffer layouts (Figure 12a),
transpose staging variants (Table V).  With the app registry and the layout
autotuner each of those is one call: every candidate is generated through
the unified backend registry (CUDA, Triton or MLIR) and ranked on the
analytic device model plus the op-count cost model.

Run with::

    PYTHONPATH=src python examples/autotune_layouts.py
"""

from repro.apps.registry import available_apps, get_app
from repro.tune import autotune


def main() -> None:
    for name in ("lud", "nw", "transpose"):
        spec = get_app(name)
        result = autotune(name)
        best = result.best
        print(f"== {name}: {spec.description}")
        print(f"   space: {spec.space}")
        print(f"   {len(result)} candidates evaluated in {result.wall_seconds:.2f} s "
              f"({spec.backend} backend)")
        print(f"   winner: {best.config}  ->  {best.milliseconds:.3f} ms"
              + (f", {best.index_ops} weighted index ops" if best.has_kernel else ""))
        runner_up = result.ranked[1]
        print(f"   runner-up: {runner_up.config}  ->  {runner_up.milliseconds:.3f} ms")
        print()

    print("registered apps:", ", ".join(available_apps()))


if __name__ == "__main__":
    main()
