"""Quickstart: define LEGO layouts, inspect them, and lower them to index code.

Run with ``python examples/quickstart.py``.  Walks through the paper's
Figure 2 and Figure 6 examples, then lowers a tiled data layout to the
symbolic index expression a Triton kernel would use.
"""

import numpy as np

from repro import GroupBy, RegP, Row, TileBy, Var, antidiagonal, reverse_permutation
from repro.codegen import CodegenContext
from repro.symbolic import TritonPrinter


def figure2() -> None:
    """The 6x4 logical view, tiled (2x2)x(3x2), transposed and reversed."""
    layout = GroupBy([6, 4]).OrderBy(RegP([2, 2], [2, 1]), reverse_permutation(3, 2))
    print("Figure 2 layout:", layout)
    print("  apply([4, 1]) =", layout.apply(4, 1), "(the paper's element 17 lands at 6)")
    print("  inv(6)        =", layout.inv(6))
    print("  physical view (value = logical flat index stored at that position):")
    print(layout.physical_matrix(6, 4))
    print()


def figure6() -> None:
    """The 6x6 view: 2x2 grid of 3x3 blocks, transposed grid, anti-diagonal blocks."""
    layout = (
        GroupBy([6, 6])
        .OrderBy(RegP([2, 3, 2, 3], [1, 3, 2, 4]))
        .OrderBy(RegP([2, 2], [2, 1]), antidiagonal(3))
    )
    print("Figure 6 layout:", layout)
    print("  apply([4, 2]) =", layout.apply(4, 2), "(the paper's element 26 lands at 15)")
    print("  inv(15)       =", layout.inv(15))
    print("  bijective?    ", layout.verify())
    print()


def lower_a_data_layout() -> None:
    """Lower the Figure 1 data layout of matrix A to its index expression."""
    M, K, BM, BK = Var("M"), Var("K"), Var("BM"), Var("BK")
    pid_m, k = Var("pid_m"), Var("k")

    ctx = CodegenContext("quickstart")
    ctx.size(M, K, BM, BK)
    ctx.index(pid_m, M // BM)
    ctx.index(k, K // BK)
    ctx.divisible(M, BM)
    ctx.divisible(K, BK)

    data_layout = TileBy([M // BM, K // BK], [BM, BK]).OrderBy(Row(M, K))
    ctx.bind("a_tile_offset", data_layout[pid_m, k, :, :])

    binding = ctx.lower()["a_tile_offset"]
    print("Data layout of A:", data_layout)
    print("  lowered offset:", binding.render(TritonPrinter()))
    print(f"  arithmetic ops: {binding.ops} (raw lowering had {binding.raw_ops})")
    print()


if __name__ == "__main__":
    figure2()
    figure6()
    lower_a_data_layout()
