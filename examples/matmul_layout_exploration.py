"""Layout exploration: generate and run all four matmul transpose variants.

The kernel template never changes — only the ``Row`` / ``Col`` data layouts
of the operands do — which is the paper's "modify computations simply by
changing layouts" claim.  Each generated kernel is executed on the
mini-Triton interpreter and validated against NumPy, then its estimated
A100 performance is printed next to the cuBLAS-class baseline.

Run with ``python examples/matmul_layout_exploration.py``.
"""

import numpy as np

from repro.apps import matmul


def main() -> None:
    rng = np.random.default_rng(0)
    a = rng.standard_normal((64, 64)).astype(np.float16)
    b = rng.standard_normal((64, 64)).astype(np.float16)
    reference = a.astype(np.float32) @ b.astype(np.float32)
    config = matmul.MatmulConfig(M=64, N=64, K=64, BM=16, BN=16, BK=16, GM=2)

    print("variant  correct  index-expr ops  generation (s)")
    for variant in ("nn", "nt", "tn", "tt"):
        kernel = matmul.generate_matmul_kernel(variant)
        result, _ = matmul.run_matmul(kernel, a, b, config, variant)
        correct = np.allclose(result.astype(np.float32), reference, atol=1.0, rtol=1e-2)
        print(f"{variant:7s}  {str(correct):7s}  {kernel.binding_ops():14d}  {kernel.generation_seconds:.2f}")

    print("\nEstimated FP16 GEMM throughput (TFLOP/s) on the analytic A100 model:")
    print("size    LEGO/Triton   cuBLAS-class")
    for n in (2048, 4096, 8192):
        cfg = matmul.MatmulConfig(n, n, n)
        flops = 2.0 * n ** 3
        lego = flops / matmul.matmul_performance(cfg, "lego") / 1e12
        cublas = flops / matmul.matmul_performance(cfg, "cublas") / 1e12
        print(f"{n:<7d} {lego:12.0f} {cublas:14.0f}")

    print("\nGenerated kernel for the 'nn' variant (matches the paper's Figure 10):\n")
    print(matmul.generate_matmul_kernel("nn").source)


if __name__ == "__main__":
    main()
