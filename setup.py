"""Setuptools shim (legacy editable install; metadata lives in pyproject.toml)."""
from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.1.0",
    description=(
        "LEGO: a layout expression language for code generation of "
        "hierarchical mapping (reproduction)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
